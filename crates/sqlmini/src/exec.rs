//! Query executor — the execute half of the plan → execute pipeline.
//!
//! Every statement runs from an immutable physical plan (see the
//! `plan` module): scans read the MVCC-visible rows of their snapshot,
//! the filter / group / having / project / sort operators evaluate the
//! plan's slot-resolved expressions in place, and plain `SELECT`s stream
//! their filter and projection through the [`Rows`] cursor — the cursor
//! holds the shared `Arc<PhysicalPlan>`, so repeated executions of a
//! prepared statement clone no expressions at all.
//!
//! Grouped aggregation is a hash operator over *row indices*: each input
//! row's `GROUP BY` key is evaluated and hashed (NULLs group together,
//! `-0.0`/`NaN` are canonicalized) and the row's index is appended to its
//! bucket — rows are never cloned into groups. Each distinct aggregate
//! call of the statement (deduplicated at plan time by expression
//! identity) is then folded exactly once per group, no matter how many
//! times it appears across the select list, `HAVING` and `ORDER BY`; the
//! lowered output expressions just read the memoized values.
//!
//! `INSERT … SELECT` consumes its source through the streaming cursor and
//! inserts row by row, so the intermediate result is never materialized;
//! the new rows stay uncommitted (marked with a transaction id) until the
//! stream finishes, so an error mid-stream leaves nothing behind.
//!
//! Writes are versioned: DML never overwrites a row in place — UPDATE and
//! DELETE end the visible version and (for UPDATE) append a successor,
//! stamped either with a fresh commit timestamp (auto-commit) or with the
//! open transaction's id, to be resolved at `COMMIT`/`ROLLBACK`.

use std::cmp::Ordering;
use std::collections::{hash_map::Entry, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::ast::{
    walk_slots, Expr, FromItem, InsertSource, SelectStmt, Stmt, UnOp, AGGREGATE_FUNCTIONS,
};
use crate::batch;
use crate::cost::IndexChoice;
use crate::db::{Database, UndoEntry, WriteTxn};
use crate::decode::NamedRows;
use crate::error::{Result, SqlError};
use crate::plan::{
    AggCall, AggOp, Binding, DmlPlan, Env, GroupPlan, HashJoin, InsertPlan, PhysicalPlan, PlanFn,
    SelectOps, ZeroScan, ZeroScanKind,
};
use crate::table::{
    rid_pos, rid_shard, Column, QueryResult, Row, Schema, Snapshot, Table, TableView, LIVE,
    UNCOMMITTED,
};
use crate::value::Value;

/// The values of one group during grouped evaluation: its key and its
/// memoized aggregate results, read by `GroupKey`/`Agg` expressions.
#[derive(Clone, Copy)]
struct GroupVals<'a> {
    key: &'a [Value],
    aggs: &'a [Value],
}

/// Everything expression evaluation needs besides the row: the database
/// (for UDF calls), the statement's bind parameters, and — inside the
/// grouping operator — the current group's key and aggregate values.
struct Ctx<'a> {
    db: &'a Database,
    params: &'a [Value],
    /// The plan's resolved scalar-function table (`Expr::ScalarCall`
    /// indexes); empty in contexts that evaluate raw AST expressions.
    fns: &'a [PlanFn],
    group: Option<GroupVals<'a>>,
}

/// No resolved functions — raw-AST evaluation contexts.
const NO_FNS: &[PlanFn] = &[];

/// The empty name environment used once expressions are slot-resolved.
const NO_BINDINGS: &[Binding] = &[];

// ---------------------------------------------------------------------------
// Value operations
// ---------------------------------------------------------------------------

/// Three-valued comparison; `None` when either side is NULL.
pub fn compare(a: &Value, b: &Value) -> Result<Option<Ordering>> {
    use Value::*;
    Ok(Some(match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Int(x), Float(y)) => (*x as f64)
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Float(x), Int(y)) => x
            .partial_cmp(&(*y as f64))
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Text(x), Text(y)) => x.cmp(y),
        (Bool(x), Bool(y)) => x.cmp(y),
        (Timestamp(x), Timestamp(y)) => x.cmp(y),
        (Timestamp(x), Text(y)) => x.cmp(&crate::value::parse_timestamp(y)?),
        (Text(x), Timestamp(y)) => crate::value::parse_timestamp(x)?.cmp(y),
        (Interval(x), Interval(y)) => x.cmp(y),
        (x, y) => {
            return Err(SqlError::Type(format!(
                "cannot compare {} with {}",
                x.data_type().name(),
                y.data_type().name()
            )))
        }
    }))
}

/// Total ordering used by ORDER BY: NULLs sort last, mixed numerics compare
/// numerically, and NaN sorts after every non-NULL float (PostgreSQL's rule).
/// The NaN case must not collapse to `Equal`: the standard sort requires a
/// total order and aborts when `a == NaN`, `b == NaN`, but `a < b`.
pub fn order_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => {
            if let (Value::Float(x), Value::Float(y)) = (a, b) {
                return match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
                };
            }
            compare(a, b).ok().flatten().unwrap_or(Ordering::Equal)
        }
    }
}

fn arith(op: BinOpKind, a: &Value, b: &Value) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    Ok(match (op, a, b) {
        (BinOpKind::Add, Int(x), Int(y)) => Int(x + y),
        (BinOpKind::Sub, Int(x), Int(y)) => Int(x - y),
        (BinOpKind::Mul, Int(x), Int(y)) => Int(x * y),
        (BinOpKind::Div, Int(x), Int(y)) => {
            if *y == 0 {
                return Err(SqlError::Execution("division by zero".into()));
            }
            Int(x / y)
        }
        // timestamp/interval arithmetic
        (BinOpKind::Add, Timestamp(t), Interval(i))
        | (BinOpKind::Add, Interval(i), Timestamp(t)) => Timestamp(t + i),
        (BinOpKind::Sub, Timestamp(t), Interval(i)) => Timestamp(t - i),
        (BinOpKind::Sub, Timestamp(x), Timestamp(y)) => Interval(x - y),
        (BinOpKind::Add, Interval(x), Interval(y)) => Interval(x + y),
        (BinOpKind::Sub, Interval(x), Interval(y)) => Interval(x - y),
        (BinOpKind::Mul, Interval(x), Int(y)) | (BinOpKind::Mul, Int(y), Interval(x)) => {
            Interval(x * y)
        }
        // float-promoting arithmetic
        (op, x, y) => {
            let xf = x.as_f64()?;
            let yf = y.as_f64()?;
            match op {
                BinOpKind::Add => Float(xf + yf),
                BinOpKind::Sub => Float(xf - yf),
                BinOpKind::Mul => Float(xf * yf),
                BinOpKind::Div => {
                    if yf == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    Float(xf / yf)
                }
            }
        }
    })
}

/// Arithmetic subset of [`crate::ast::BinOp`] (keeps `arith` total).
#[derive(Clone, Copy)]
enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
}

fn logical(and: bool, a: &Value, b: &Value) -> Result<Value> {
    let lhs = match a {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let rhs = match b {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    // Kleene three-valued logic.
    Ok(if and {
        match (lhs, rhs) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        }
    } else {
        match (lhs, rhs) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        }
    })
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, row: &[Value]) -> Result<Value> {
    use crate::ast::BinOp;
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => ctx
            .params
            .get(*i - 1)
            .cloned()
            .ok_or_else(|| SqlError::Execution(format!("there is no parameter ${i}"))),
        Expr::Slot(i) => Ok(row[*i].clone()),
        Expr::GroupKey(i) => match &ctx.group {
            Some(g) => Ok(g.key[*i].clone()),
            None => Err(SqlError::Execution(
                "group key referenced outside the grouping operator".into(),
            )),
        },
        Expr::Agg(k) => match &ctx.group {
            Some(g) => Ok(g.aggs[*k].clone()),
            None => Err(SqlError::Execution(
                "aggregate referenced outside the grouping operator".into(),
            )),
        },
        Expr::Column { table, name } => {
            let i = env.resolve(table.as_deref(), name)?;
            Ok(row[i].clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, env, row)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Interval(i) => Ok(Value::Interval(-i)),
                    other => Err(SqlError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    v => Ok(Value::Bool(!v.as_bool()?)),
                },
            }
        }
        Expr::Binary { op, left, right } => {
            // AND/OR short-circuit as in PostgreSQL: a false (resp. true)
            // left side decides without evaluating the right side.
            // (Kleene logic: NULL on the left still needs the right side.)
            if matches!(op, BinOp::And | BinOp::Or) {
                let a = eval(ctx, left, env, row)?;
                let and = matches!(op, BinOp::And);
                if let Ok(decided) = a.as_bool() {
                    if decided != and {
                        return Ok(Value::Bool(decided));
                    }
                }
                let b = eval(ctx, right, env, row)?;
                return logical(and, &a, &b);
            }
            let a = eval(ctx, left, env, row)?;
            let b = eval(ctx, right, env, row)?;
            match op {
                BinOp::Add => arith(BinOpKind::Add, &a, &b),
                BinOp::Sub => arith(BinOpKind::Sub, &a, &b),
                BinOp::Mul => arith(BinOpKind::Mul, &a, &b),
                BinOp::Div => arith(BinOpKind::Div, &a, &b),
                BinOp::And | BinOp::Or => {
                    unreachable!("AND/OR take the short-circuit path above")
                }
                BinOp::Concat => {
                    if a.is_null() || b.is_null() {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Text(format!("{a}{b}")))
                    }
                }
                cmp => {
                    let ord = compare(&a, &b)?;
                    Ok(match ord {
                        None => Value::Null,
                        Some(o) => Value::Bool(match cmp {
                            BinOp::Eq => o == Ordering::Equal,
                            BinOp::Ne => o != Ordering::Equal,
                            BinOp::Lt => o == Ordering::Less,
                            BinOp::Le => o != Ordering::Greater,
                            BinOp::Gt => o == Ordering::Greater,
                            BinOp::Ge => o != Ordering::Less,
                            _ => unreachable!(),
                        }),
                    })
                }
            }
        }
        Expr::Cast { expr, ty } => eval(ctx, expr, env, row)?.cast_to(*ty),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let probe = eval(ctx, expr, env, row)?;
            if probe.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(ctx, item, env, row)?;
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                if compare(&probe, &v)? == Some(Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, env, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                return Err(SqlError::Execution(format!(
                    "aggregate function {name}() is not allowed here"
                )));
            }
            if *distinct {
                return Err(SqlError::Type(format!(
                    "DISTINCT specified, but {name} is not an aggregate function"
                )));
            }
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval(ctx, a, env, row)).collect();
            ctx.db.call_scalar(name, &vals?)
        }
        Expr::ScalarCall { f, args } => {
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval(ctx, a, env, row)).collect();
            let vals = vals?;
            match &ctx.fns[*f] {
                PlanFn::Udf(f) => f(ctx.db, &vals),
                PlanFn::Intrinsic {
                    op,
                    counter,
                    fallback,
                } => match crate::functions::eval_intrinsic(*op, &vals) {
                    Some(r) => {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        r
                    }
                    // A shape the native path does not handle: the
                    // registered UDF owns the error wording.
                    None => fallback(ctx.db, &vals),
                },
            }
        }
    }
}

/// Predicate-clause truthiness: NULL is not true. `clause` names the
/// clause in the type error (`WHERE`, `HAVING`).
fn is_true_in(v: &Value, clause: &str) -> Result<bool> {
    match v {
        Value::Null => Ok(false),
        v => v
            .as_bool()
            .map_err(|_| SqlError::Type(format!("argument of {clause} must be type boolean"))),
    }
}

/// WHERE-clause truthiness.
fn is_true(v: &Value) -> Result<bool> {
    is_true_in(v, "WHERE")
}

// ---------------------------------------------------------------------------
// Grouping keys and aggregation
// ---------------------------------------------------------------------------

/// Hashable, normalized form of one grouping-key (or DISTINCT row)
/// component. NULLs group together (as in PostgreSQL's GROUP BY), and
/// `-0.0`/`NaN` floats are canonicalized so every row lands in a stable
/// bucket.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum KeyAtom {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Text(String),
    Timestamp(i64),
    Interval(i64),
}

impl KeyAtom {
    pub(crate) fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Bool(b) => KeyAtom::Bool(*b),
            Value::Int(i) => KeyAtom::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                KeyAtom::Float(if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                })
            }
            Value::Text(s) => KeyAtom::Text(s.clone()),
            Value::Timestamp(t) => KeyAtom::Timestamp(*t),
            Value::Interval(s) => KeyAtom::Interval(*s),
        }
    }

    fn row_key(row: &[Value]) -> Vec<KeyAtom> {
        row.iter().map(KeyAtom::from_value).collect()
    }
}

/// Streaming accumulator for one aggregate call of one group.
enum AggAcc {
    Count(i64),
    /// `count(DISTINCT x)`: the set of normalized non-NULL values seen.
    CountDistinct(HashSet<KeyAtom>),
    Sum {
        sum: f64,
        n: i64,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(op: AggOp) -> AggAcc {
        match op {
            AggOp::CountStar | AggOp::Count => AggAcc::Count(0),
            AggOp::CountDistinct => AggAcc::CountDistinct(HashSet::new()),
            AggOp::Sum => AggAcc::Sum { sum: 0.0, n: 0 },
            AggOp::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
            AggOp::Min => AggAcc::Min(None),
            AggOp::Max => AggAcc::Max(None),
        }
    }

    /// Fold one source row into the accumulator (NULL argument values are
    /// skipped, as in SQL aggregates).
    fn update(
        &mut self,
        ctx: &Ctx<'_>,
        call: &AggCall,
        env: &Env<'_>,
        row: &[Value],
    ) -> Result<()> {
        if call.op == AggOp::CountStar {
            let AggAcc::Count(n) = self else {
                unreachable!()
            };
            *n += 1;
            return Ok(());
        }
        let v = eval(ctx, &call.args[0], env, row)?;
        if v.is_null() {
            return Ok(());
        }
        let is_min = matches!(self, AggAcc::Min(_));
        match self {
            AggAcc::Count(n) => *n += 1,
            AggAcc::CountDistinct(seen) => {
                seen.insert(KeyAtom::from_value(&v));
            }
            AggAcc::Sum { sum, n } | AggAcc::Avg { sum, n } => {
                *sum += v.as_f64()?;
                *n += 1;
            }
            AggAcc::Min(best) | AggAcc::Max(best) => {
                *best = Some(match best.take() {
                    None => v,
                    Some(b) => {
                        let keep_new = match compare(&v, &b)? {
                            Some(Ordering::Less) => is_min,
                            Some(Ordering::Greater) => !is_min,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(n),
            AggAcc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            AggAcc::Sum { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum)
                }
            }
            AggAcc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggAcc::Min(best) | AggAcc::Max(best) => best.unwrap_or(Value::Null),
        }
    }
}

/// The grouping operator's accumulation pass, in one sweep over borrowed
/// source rows: apply the WHERE filter, hash each surviving row's key
/// into its bucket (rows are never cloned — only key values are kept),
/// and fold every distinct aggregate call incrementally. Returns each
/// group's `(key values, memoized aggregate values)`. No GROUP BY = one
/// group over the whole input, even when it is empty (the ungrouped
/// aggregate's one-row result).
fn grouped_groups<'r>(
    ctx: &Ctx<'_>,
    where_clause: Option<&Expr>,
    gp: &GroupPlan,
    rows: impl IntoIterator<Item = &'r Row>,
) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let mut index: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<AggAcc>)> = Vec::new();
    let accs_new = || {
        gp.aggs
            .iter()
            .map(|c| AggAcc::new(c.op))
            .collect::<Vec<_>>()
    };
    if gp.keys.is_empty() {
        groups.push((Vec::new(), accs_new()));
    }
    let mut key: Vec<Value> = Vec::with_capacity(gp.keys.len());
    for r in rows {
        if let Some(p) = where_clause {
            if !is_true(&eval(ctx, p, &env, r)?)? {
                continue;
            }
        }
        let gi = if gp.keys.is_empty() {
            0
        } else {
            key.clear();
            for e in &gp.keys {
                key.push(eval(ctx, e, &env, r)?);
            }
            match index.entry(KeyAtom::row_key(&key)) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push((key.clone(), accs_new()));
                    groups.len() - 1
                }
            }
        };
        let (_, accs) = &mut groups[gi];
        for (acc, call) in accs.iter_mut().zip(&gp.aggs) {
            acc.update(ctx, call, &env, r)?;
        }
    }
    // One memoized evaluation per (group, distinct call) — the
    // observability counter the memoization tests pin down.
    ctx.db.note_agg_evals((groups.len() * gp.aggs.len()) as u64);
    Ok(groups
        .into_iter()
        .map(|(key, accs)| (key, accs.into_iter().map(AggAcc::finish).collect()))
        .collect())
}

/// The grouping operator's emission pass (runs without any table guard):
/// per group, evaluate the lowered HAVING / projection / ORDER BY
/// expressions against the memoized key and aggregate values.
fn emit_groups(
    db: &Database,
    params: &[Value],
    ops: &SelectOps,
    groups: Vec<(Vec<Value>, Vec<Value>)>,
) -> Result<Vec<(Vec<Value>, Row)>> {
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let mut keyed = Vec::with_capacity(groups.len());
    let Some(gp) = &ops.group else {
        unreachable!("emit_groups runs under a group plan");
    };
    for (key, aggs) in &groups {
        let gctx = Ctx {
            db,
            params,
            fns: &ops.fns,
            group: Some(GroupVals { key, aggs }),
        };
        if let Some(h) = &gp.having {
            if !is_true_in(&eval(&gctx, h, &env, &[])?, "HAVING")? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(ops.projections.len());
        for e in &ops.projections {
            out.push(eval(&gctx, e, &env, &[])?);
        }
        let mut sort_key = Vec::with_capacity(ops.order_by.len());
        for (e, _) in &ops.order_by {
            sort_key.push(eval(&gctx, e, &env, &[])?);
        }
        keyed.push((sort_key, out));
    }
    Ok(keyed)
}

/// Shared tail of the grouped paths: DISTINCT deduplication, ordering
/// and LIMIT over the projected group rows.
fn grouped_tail(mut keyed: Vec<(Vec<Value>, Row)>, ops: &SelectOps) -> Vec<Row> {
    if ops.distinct {
        let mut seen = HashSet::new();
        keyed.retain(|(_, r)| seen.insert(KeyAtom::row_key(r)));
        sort_by_output(&mut keyed, &ops.distinct_order);
    } else {
        sort_keyed(&mut keyed, &ops.order_by);
    }
    keyed.into_iter().take(ops.limit).map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// Streaming result cursor
// ---------------------------------------------------------------------------

/// A streaming query result: an iterator of `Result<Row>` plus column
/// names. For plain `SELECT`s (no `ORDER BY`, no `GROUP BY`, no
/// aggregates) the WHERE filter, the projection and DISTINCT
/// deduplication run lazily per [`Iterator::next`] call against the
/// shared physical plan, so consumers that stop early never pay for the
/// full result and repeated executions clone no expressions. When the
/// plan additionally classified every scan-side expression as
/// re-entrancy-free, the cursor streams **zero-copy**: it owns the
/// scanned table's read guard (released when drained or dropped) and
/// never snapshots the table — see [`crate::Statement::query_rows`] for
/// the locking rule this implies. Ordered and grouped/aggregated queries
/// are materialized up front, as both are pipeline breakers.
pub struct Rows<'db> {
    columns: Vec<String>,
    state: RowsState<'db>,
}

/// Where a lazy cursor's operator pipeline lives.
enum OpsSource {
    /// The shared plan of a prepared statement — zero per-execution
    /// expression clones.
    Plan(Arc<PhysicalPlan>),
    /// A pipeline resolved at execution time (dynamic scans).
    Owned(Box<SelectOps>),
}

impl OpsSource {
    fn ops(&self) -> &SelectOps {
        match self {
            OpsSource::Plan(p) => match &**p {
                PhysicalPlan::StaticSelect(sp) => &sp.ops,
                _ => unreachable!("lazy cursors only reference SELECT plans"),
            },
            OpsSource::Owned(o) => o,
        }
    }
}

struct LazyScan<'db> {
    db: &'db Database,
    params: Vec<Value>,
    ops: OpsSource,
    source: std::vec::IntoIter<Row>,
    /// DISTINCT: projected rows already emitted.
    seen: Option<HashSet<Vec<KeyAtom>>>,
    remaining: usize,
    failed: bool,
}

/// How many output rows a streaming scan produces per read-guard
/// acquisition. Large enough to amortize the lock round-trip, small
/// enough that a writer waiting on the table gets in promptly.
const CURSOR_BATCH: usize = 128;

/// A zero-copy streaming scan over the cursor's MVCC snapshot: filter +
/// projection evaluate against rows borrowed from the version array,
/// refilled a batch at a time under short-lived read guards. No lock is
/// held between refills, so the consumer may freely write to the scanned
/// table mid-stream — its own appends carry commit timestamps newer than
/// the pinned snapshot and stay invisible, which keeps the stream
/// consistent. The cursor pins the table (not the lock) so compaction
/// cannot renumber versions while its position is saved.
struct MvccScan<'db> {
    db: &'db Database,
    params: Vec<Value>,
    /// The shared plan — holds the zero-copy expressions and fns table.
    plan: Arc<PhysicalPlan>,
    handle: Arc<parking_lot::RwLock<Table>>,
    /// The snapshot this cursor reads as of; writes stamped after its
    /// timestamp are invisible.
    snap: Snapshot,
    /// Projection as plain slot indices when every output is a bare
    /// column (skips expression dispatch per value).
    slot_projs: Option<Vec<usize>>,
    /// Index-scan candidate rids (ascending), probed when the cursor
    /// opened; `None` scans every version sequentially. The pin keeps
    /// the rids valid across refills.
    cand: Option<Vec<usize>>,
    /// Next shard a sequential walk reads (candidate scans derive the
    /// shard from the next rid instead).
    cur_shard: usize,
    /// Next arena-local position (sequential) or candidate-list index to
    /// examine on refill.
    next_version: usize,
    /// Shards below this are already unpinned: the cursor frees each
    /// shard for compaction as soon as it has streamed past it.
    unpinned_below: usize,
    /// Snapshot-visible rows examined so far (flushed to `rows_scanned`
    /// when the cursor drops).
    examined: u64,
    /// Output rows produced by the last refill, drained by `next()`.
    buf: VecDeque<Row>,
    /// DISTINCT: projected rows already emitted.
    seen: Option<HashSet<Vec<KeyAtom>>>,
    remaining: usize,
    failed: bool,
    /// An evaluation error hit during refill, surfaced after the rows
    /// buffered before it have been yielded (the per-row cursor's
    /// rows-then-error ordering).
    pending_err: Option<SqlError>,
    /// The version array is exhausted (or LIMIT reached) — no refill
    /// will produce more rows.
    done: bool,
}

impl Drop for MvccScan<'_> {
    fn drop(&mut self) {
        // `rows_scanned` counts rows actually examined: an early-stopping
        // consumer (LIMIT, partial drain) is charged only for what the
        // cursor read. Flushed once, when the cursor finishes — and the
        // pins on the shards not yet streamed past are released here
        // too, so dropping a half-consumed cursor promptly re-enables
        // compaction everywhere.
        self.db.note_scan_rows(self.examined);
        let guard = self.handle.read();
        for s in self.unpinned_below..guard.shard_count() {
            guard.unpin_shard(s);
        }
    }
}

impl MvccScan<'_> {
    /// Re-acquire the table read guard and walk versions from the saved
    /// position: visibility check, filter, projection (+ DISTINCT), until
    /// [`CURSOR_BATCH`] output rows are buffered, LIMIT is exhausted, or
    /// the version array ends. The guard drops on return.
    fn refill(&mut self) -> Result<()> {
        let mut buf = std::mem::take(&mut self.buf);
        let res = self.scan_rows(CURSOR_BATCH, &mut |r| buf.push_back(r));
        self.buf = buf;
        res
    }

    /// Drain every remaining output row straight into `out` under a
    /// single guard acquisition — the materializing (`into_result`)
    /// path, which wants the whole result at once and gains nothing
    /// from batched refills.
    fn drain_all(&mut self, out: &mut Vec<Row>) -> Result<()> {
        out.extend(self.buf.drain(..));
        if self.done {
            return Ok(());
        }
        self.scan_rows(usize::MAX, &mut |r| out.push(r))
    }

    fn scan_rows(&mut self, batch: usize, sink: &mut dyn FnMut(Row)) -> Result<()> {
        let MvccScan {
            db,
            params,
            plan,
            handle,
            snap,
            slot_projs,
            cand,
            cur_shard,
            next_version,
            unpinned_below,
            examined,
            buf: _,
            seen,
            remaining,
            failed: _,
            pending_err: _,
            done,
        } = self;
        let PhysicalPlan::StaticSelect(sp) = &**plan else {
            unreachable!("streaming scans hold a static SELECT plan");
        };
        let Some(z) = &sp.zero else {
            unreachable!("streaming scans hold a zero-copy plan");
        };
        let ZeroScanKind::Select { projections, .. } = &z.kind else {
            unreachable!("streaming scans are plain SELECTs");
        };
        let ctx = Ctx {
            db,
            params,
            fns: &sp.ops.fns,
            group: None,
        };
        let env = Env {
            bindings: NO_BINDINGS,
        };
        let guard = handle.read();
        let nshards = guard.shard_count();
        // Refill shard by shard: only the shard being drained is read-
        // locked, so the stream contends with writers of that one shard,
        // and every shard the cursor has moved past is unpinned for
        // compaction. An index scan walks its candidate rids instead of
        // the heaps; either way rows appended mid-stream are skipped or
        // visibility-filtered — they are newer than the snapshot.
        let mut produced = 0usize;
        'scan: while *remaining > 0 && produced < batch {
            let shard = match cand {
                Some(c) => match c.get(*next_version) {
                    Some(&rid) => rid_shard(rid),
                    None => break,
                },
                None => {
                    if *cur_shard >= nshards {
                        break;
                    }
                    *cur_shard
                }
            };
            while *unpinned_below < shard {
                guard.unpin_shard(*unpinned_below);
                *unpinned_below += 1;
            }
            let sv = guard.shard_view(shard);
            let all_vis = sv.all_visible(*snap);
            let versions = sv.versions();
            loop {
                if produced >= batch {
                    break 'scan;
                }
                let pos = match cand {
                    Some(c) => match c.get(*next_version) {
                        Some(&rid) if rid_shard(rid) == shard => rid_pos(rid),
                        _ => break,
                    },
                    None if *next_version < versions.len() => *next_version,
                    None => break,
                };
                *next_version += 1;
                let v = &versions[pos];
                if !(all_vis || v.visible(*snap)) {
                    continue;
                }
                *examined += 1;
                let r = &v.data;
                if let Some(p) = &z.where_clause {
                    if !is_true(&eval(&ctx, p, &env, r)?)? {
                        continue;
                    }
                }
                let out: Row = match slot_projs {
                    Some(slots) => slots.iter().map(|&s| r[s].clone()).collect(),
                    None => projections
                        .iter()
                        .map(|e| eval(&ctx, e, &env, r))
                        .collect::<Result<_>>()?,
                };
                if let Some(seen) = seen.as_mut() {
                    if !seen.insert(KeyAtom::row_key(&out)) {
                        continue;
                    }
                }
                *remaining -= 1;
                produced += 1;
                sink(out);
                if *remaining == 0 {
                    break 'scan;
                }
            }
            // This shard is drained; a sequential walk restarts local
            // positions in the next one.
            if cand.is_none() {
                *next_version = 0;
            }
            *cur_shard = shard + 1;
        }
        let exhausted = match cand {
            Some(c) => *next_version >= c.len(),
            None => *cur_shard >= nshards,
        };
        if *remaining == 0 || exhausted {
            *done = true;
        }
        Ok(())
    }
}

enum RowsState<'db> {
    /// Fully materialized output rows.
    Done(std::vec::IntoIter<Row>),
    /// An externally produced row stream (e.g. `fmu_simulate` output
    /// assembly) surfaced through the same cursor type.
    Streamed(Box<dyn Iterator<Item = Result<Row>> + 'db>),
    /// Scan source with deferred filter + projection (+ DISTINCT).
    Lazy(Box<LazyScan<'db>>),
    /// Zero-copy scan streaming over a pinned MVCC snapshot, refilled in
    /// batches under short-lived read guards.
    Mvcc(Box<MvccScan<'db>>),
}

impl<'db> Rows<'db> {
    /// Wrap an already-materialized result.
    pub fn from_result(result: QueryResult) -> Rows<'db> {
        Rows {
            columns: result.columns,
            state: RowsState::Done(result.rows.into_iter()),
        }
    }

    /// Wrap an external row-producing iterator as a streaming cursor.
    pub fn streamed<I>(columns: Vec<String>, iter: I) -> Rows<'db>
    where
        I: Iterator<Item = Result<Row>> + 'db,
    {
        Rows {
            columns,
            state: RowsState::Streamed(Box::new(iter)),
        }
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Convert into an iterator of by-name-addressable rows (see
    /// [`crate::decode::NamedRow`]).
    pub fn into_named(self) -> NamedRows<'db> {
        NamedRows::new(self)
    }

    /// Drain the cursor into a materialized [`QueryResult`].
    pub fn into_result(mut self) -> Result<QueryResult> {
        let mut q = QueryResult::new(std::mem::take(&mut self.columns));
        match &mut self.state {
            RowsState::Done(it) => {
                q.rows = it.collect();
                return Ok(q);
            }
            // Bulk drain: one guard acquisition, rows pushed straight
            // into the result, skipping `next()`'s per-row dispatch and
            // the batch buffer entirely.
            RowsState::Mvcc(scan) => {
                if let Some(e) = scan.pending_err.take() {
                    return Err(e);
                }
                if scan.failed {
                    q.rows.extend(scan.buf.drain(..));
                    return Ok(q);
                }
                scan.drain_all(&mut q.rows)?;
                return Ok(q);
            }
            _ => {}
        }
        for r in self {
            q.rows.push(r?);
        }
        Ok(q)
    }
}

impl Iterator for Rows<'_> {
    type Item = Result<Row>;

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            // Materialized output: the length is exact, so collecting
            // consumers (`query_as`, `into_result`) preallocate.
            RowsState::Done(it) => it.size_hint(),
            RowsState::Streamed(_) => (0, None),
            RowsState::Lazy(scan) => {
                if scan.failed {
                    (0, Some(0))
                } else {
                    (0, Some(scan.source.len().min(scan.remaining)))
                }
            }
            RowsState::Mvcc(scan) => {
                if scan.failed {
                    (0, Some(0))
                } else if scan.done && scan.pending_err.is_none() {
                    (scan.buf.len(), Some(scan.buf.len()))
                } else {
                    // Unlocked between refills: the total is unknowable
                    // without the guard, but buffered rows are certain.
                    (scan.buf.len(), None)
                }
            }
        }
    }

    fn count(self) -> usize {
        match self.state {
            // O(1) for materialized output — no per-row dispatch.
            RowsState::Done(it) => it.count(),
            state => Rows {
                columns: self.columns,
                state,
            }
            .fold(0, |n, _| n + 1),
        }
    }

    fn fold<B, G>(self, init: B, mut g: G) -> B
    where
        G: FnMut(B, Self::Item) -> B,
    {
        // Internal iteration over the materialized and streamed states
        // skips the per-row state dispatch of `next()` — `for_each`,
        // `sum`, `count` and friends all drain through here.
        match self.state {
            RowsState::Done(it) => it.fold(init, |acc, r| g(acc, Ok(r))),
            RowsState::Streamed(it) => it.fold(init, g),
            state => {
                let mut rows = Rows {
                    columns: self.columns,
                    state,
                };
                let mut acc = init;
                for item in &mut rows {
                    acc = g(acc, item);
                }
                acc
            }
        }
    }

    fn next(&mut self) -> Option<Result<Row>> {
        match &mut self.state {
            RowsState::Done(it) => it.next().map(Ok),
            RowsState::Streamed(it) => it.next(),
            RowsState::Lazy(scan) => {
                if scan.failed || scan.remaining == 0 {
                    return None;
                }
                let ops = scan.ops.ops();
                let ctx = Ctx {
                    db: scan.db,
                    params: &scan.params,
                    fns: &ops.fns,
                    group: None,
                };
                let env = Env {
                    bindings: NO_BINDINGS,
                };
                loop {
                    let r = scan.source.next()?;
                    match &ops.where_clause {
                        None => {}
                        Some(p) => match eval(&ctx, p, &env, &r).and_then(|v| is_true(&v)) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                scan.failed = true;
                                return Some(Err(e));
                            }
                        },
                    }
                    let mut out = Vec::with_capacity(ops.projections.len());
                    for e in &ops.projections {
                        match eval(&ctx, e, &env, &r) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                scan.failed = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    if let Some(seen) = &mut scan.seen {
                        if !seen.insert(KeyAtom::row_key(&out)) {
                            continue;
                        }
                    }
                    scan.remaining -= 1;
                    return Some(Ok(out));
                }
            }
            RowsState::Mvcc(scan) => loop {
                // Drain the buffered batch first; only when it runs dry
                // does the cursor take the table guard again to refill.
                if let Some(r) = scan.buf.pop_front() {
                    return Some(Ok(r));
                }
                if scan.failed {
                    return None;
                }
                if let Some(e) = scan.pending_err.take() {
                    scan.failed = true;
                    return Some(Err(e));
                }
                if scan.done {
                    return None;
                }
                if let Err(e) = scan.refill() {
                    scan.pending_err = Some(e);
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

/// A scanned table's schema no longer matches the cached plan — a DDL
/// race between the plan's epoch check and the scan. The caller's next
/// execution recompiles against the new epoch.
fn stale_plan(name: &str) -> SqlError {
    SqlError::Execution(format!(
        "cached plan is stale: relation \"{name}\" changed during execution"
    ))
}

/// Does a table's live schema still match the column layout a plan was
/// compiled against? Checked under the same guard the rows come from.
fn schema_matches(schema: &Schema, planned: &[String]) -> bool {
    schema.len() == planned.len()
        && schema
            .columns
            .iter()
            .zip(planned)
            .all(|(c, p)| c.name == *p)
}

/// Cross-join a snapshot of table rows onto the joined set so far. The
/// initial state (one empty row) short-circuits: `[[]] × T = T`.
fn cross_join(rows: Vec<Row>, trows: Vec<Row>) -> Vec<Row> {
    if rows.len() == 1 && rows[0].is_empty() {
        return trows;
    }
    let mut next = Vec::with_capacity(rows.len() * trows.len().max(1));
    for base in &rows {
        for tr in &trows {
            let mut r = base.clone();
            r.extend(tr.iter().cloned());
            next.push(r);
        }
    }
    next
}

/// Scan the base tables of a static plan into the joined row set,
/// re-checking each table's schema against the plan under the same guard
/// the rows are snapshotted from (so `Slot` indices stay in bounds and
/// keep pointing at the planned columns). Only the columns the statement
/// actually reads are cloned — the snapshot is column-pruned.
fn scan_tables(
    db: &Database,
    tables: &[String],
    schemas: &[Vec<String>],
    used_cols: &[Vec<usize>],
    hash_join: Option<&HashJoin>,
) -> Result<Vec<Row>> {
    // Hold every distinct table's read guard *simultaneously* (acquired
    // in pointer order — the commit path's lock order) and load one
    // snapshot under them: the projections below are point-in-time
    // consistent across tables, and an in-place writer (see
    // `run_update`) can never slip a mutation between this snapshot and
    // the reads it covers.
    let handles: Vec<_> = tables
        .iter()
        .map(|n| db.get_table(n))
        .collect::<Result<Vec<_>>>()?;
    let mut distinct: Vec<&Arc<parking_lot::RwLock<Table>>> = handles.iter().collect();
    distinct.sort_by_key(|h| Arc::as_ptr(h) as usize);
    distinct.dedup_by_key(|h| Arc::as_ptr(h) as usize);
    let guards: Vec<(usize, parking_lot::RwLockReadGuard<'_, Table>)> = distinct
        .iter()
        .map(|h| (Arc::as_ptr(h) as usize, h.read()))
        .collect();
    let snap = db.current_snapshot();
    let mut scanned: Vec<Vec<Row>> = Vec::with_capacity(tables.len());
    for ((name, planned), (used, handle)) in tables
        .iter()
        .zip(schemas)
        .zip(used_cols.iter().zip(&handles))
    {
        let key = Arc::as_ptr(handle) as usize;
        let (_, guard) = guards
            .iter()
            .find(|(p, _)| *p == key)
            .expect("every scanned table has a held guard");
        if !schema_matches(&guard.schema, planned) {
            return Err(stale_plan(name));
        }
        let trows = guard.project_rows(used, snap);
        db.note_scan(trows.len() as u64, false);
        scanned.push(trows);
    }
    if let Some(hj) = hash_join {
        debug_assert_eq!(scanned.len(), 2, "hash joins are planned for two tables");
        let right = scanned.pop().expect("two scanned tables");
        let left = scanned.pop().expect("two scanned tables");
        // Right-side slots address the pruned concatenated layout; the
        // right table's own rows start after the left's pruned width.
        return hash_join_rows(
            db,
            left,
            right,
            hj.left_slot,
            hj.right_slot - used_cols[0].len(),
        );
    }
    let mut rows: Vec<Row> = vec![Vec::new()];
    for trows in scanned {
        rows = cross_join(rows, trows);
    }
    Ok(rows)
}

/// Hash equi-join: build a hash table over the right rows' keys, probe
/// with each left row in scan order. Emission order (left-major, right
/// rows in scan order per match) and semantics match the nested loop the
/// cost model replaced: NULL keys never join, and a NaN key raises the
/// "NaN comparison" error a per-pair comparison would have raised —
/// whenever the other side has at least one non-NULL key to compare
/// against. The join conjunct stays in the WHERE clause and is re-checked
/// downstream; a hash match always passes it ([`KeyAtom`] equality
/// implies [`compare`] equality within one data type, which is all the
/// planner admits).
fn hash_join_rows(
    db: &Database,
    left: Vec<Row>,
    right: Vec<Row>,
    left_slot: usize,
    right_slot: usize,
) -> Result<Vec<Row>> {
    db.note_hash_join();
    let nan_err = || SqlError::Execution("NaN comparison".into());
    let is_nan = |v: &Value| matches!(v, Value::Float(f) if f.is_nan());
    let mut table: HashMap<KeyAtom, Vec<usize>> = HashMap::new();
    let mut right_nan = false;
    let mut right_keys = 0usize;
    for (i, r) in right.iter().enumerate() {
        let v = &r[right_slot];
        if v.is_null() {
            continue;
        }
        right_keys += 1;
        if is_nan(v) {
            right_nan = true;
            continue;
        }
        table.entry(KeyAtom::from_value(v)).or_default().push(i);
    }
    let left_keys = left.iter().filter(|l| !l[left_slot].is_null()).count();
    if right_nan && left_keys > 0 {
        return Err(nan_err());
    }
    let mut out = Vec::new();
    for l in &left {
        let v = &l[left_slot];
        if v.is_null() {
            continue;
        }
        if is_nan(v) {
            if right_keys > 0 {
                return Err(nan_err());
            }
            continue;
        }
        if let Some(matches) = table.get(&KeyAtom::from_value(v)) {
            for &i in matches {
                let mut row = l.clone();
                row.extend(right[i].iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Evaluate a dynamic FROM clause left to right (set-returning functions
/// join laterally and may re-enter the database), returning the runtime
/// bindings and the joined row set.
fn scan_from(
    db: &Database,
    params: &[Value],
    from: &[FromItem],
) -> Result<(Vec<Binding>, Vec<Row>)> {
    let ctx = Ctx {
        db,
        params,
        fns: NO_FNS,
        group: None,
    };
    let mut bindings: Vec<Binding> = Vec::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for item in from {
        match item {
            FromItem::Table { name, alias } => {
                let table = db.get_table(name)?;
                let (cols, trows) = {
                    let guard = table.read();
                    // Loaded under the guard so in-place writers cannot
                    // intervene; set-returning functions interleave and
                    // may themselves write, so a dynamic FROM reads each
                    // table at its own statement-time snapshot.
                    let snap = db.current_snapshot();
                    let trows: Vec<Row> = guard.snapshot_rows(snap);
                    db.note_scan(trows.len() as u64, false);
                    (
                        guard
                            .schema
                            .columns
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>(),
                        trows,
                    )
                };
                bindings.push(Binding {
                    qualifier: alias.clone().unwrap_or_else(|| name.clone()),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = cross_join(rows, trows);
            }
            FromItem::Function { name, args, alias } => {
                let env = Env {
                    bindings: &bindings,
                };
                let mut next = Vec::new();
                let mut out_cols: Option<Vec<String>> = None;
                for base in &rows {
                    let vals: Result<Vec<Value>> =
                        args.iter().map(|a| eval(&ctx, a, &env, base)).collect();
                    let result = db.call_table_fn(name, &vals?)?;
                    // A columnless empty result (a STRICT function's NULL
                    // short-circuit) contributes zero rows without pinning
                    // the schema — other input rows may still produce real
                    // output.
                    if result.columns.is_empty() && result.rows.is_empty() {
                        continue;
                    }
                    let mut cols = result.columns.clone();
                    // Single-column SRFs adopt the alias as the column name,
                    // as PostgreSQL does for `generate_series(…) AS id`.
                    if cols.len() == 1 {
                        if let Some(a) = alias {
                            cols = vec![a.to_ascii_lowercase()];
                        }
                    }
                    match &out_cols {
                        None => out_cols = Some(cols),
                        Some(prev) if *prev == cols => {}
                        Some(_) => {
                            return Err(SqlError::Execution(format!(
                                "function {name} returned inconsistent schemas across rows"
                            )))
                        }
                    }
                    for fr in result.rows {
                        if base.is_empty() {
                            next.push(fr);
                        } else {
                            let mut r = base.clone();
                            r.extend(fr);
                            next.push(r);
                        }
                    }
                }
                let cols = out_cols.unwrap_or_default();
                bindings.push(Binding {
                    qualifier: item.binding_name().to_ascii_lowercase(),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = next;
            }
        }
    }
    Ok((bindings, rows))
}

/// Run the resolved operator pipeline over the scanned rows: either a
/// lazy cursor (plain SELECT) or an eager materialization (pipeline
/// breakers present).
fn run_select<'db>(
    db: &'db Database,
    ops_src: OpsSource,
    source: Vec<Row>,
    params: &[Value],
) -> Result<Rows<'db>> {
    let (lazy, columns, distinct, limit) = {
        let ops = ops_src.ops();
        (
            ops.group.is_none() && ops.order_by.is_empty() && ops.distinct_order.is_empty(),
            ops.columns.clone(),
            ops.distinct,
            ops.limit,
        )
    };
    if lazy {
        return Ok(Rows {
            columns,
            state: RowsState::Lazy(Box::new(LazyScan {
                db,
                params: params.to_vec(),
                ops: ops_src,
                source: source.into_iter(),
                seen: distinct.then(HashSet::new),
                remaining: limit,
                failed: false,
            })),
        });
    }
    let rows = materialize(db, ops_src.ops(), source, params)?;
    Ok(Rows {
        columns,
        state: RowsState::Done(rows.into_iter()),
    })
}

/// Eager pipeline: filter → \[group → having\] → project → \[distinct\]
/// → sort → limit.
fn materialize(
    db: &Database,
    ops: &SelectOps,
    source: Vec<Row>,
    params: &[Value],
) -> Result<Vec<Row>> {
    let ctx = Ctx {
        db,
        params,
        fns: &ops.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };

    if let Some(gp) = &ops.group {
        // Grouping applies its own WHERE during the accumulation sweep.
        let groups = grouped_groups(&ctx, ops.where_clause.as_ref(), gp, &source)?;
        let keyed = emit_groups(db, params, ops, groups)?;
        return Ok(grouped_tail(keyed, ops));
    }

    let mut rows = source;
    if let Some(pred) = &ops.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if is_true(&eval(&ctx, pred, &env, &r)?)? {
                kept.push(r);
            }
        }
        rows = kept;
    }

    let mut keyed: Vec<(Vec<Value>, Row)>;
    if ops.distinct {
        // DISTINCT sorts on projected columns, so project everything now.
        keyed = Vec::with_capacity(rows.len());
        for r in &rows {
            let mut out = Vec::with_capacity(ops.projections.len());
            for e in &ops.projections {
                out.push(eval(&ctx, e, &env, r)?);
            }
            keyed.push((Vec::new(), out));
        }
    } else {
        // Ordered: sort keys evaluate per source row; projection runs after
        // the sort, only for the rows LIMIT keeps.
        keyed = Vec::with_capacity(rows.len());
        for r in rows {
            let mut sort_key = Vec::with_capacity(ops.order_by.len());
            for (e, _) in &ops.order_by {
                sort_key.push(eval(&ctx, e, &env, &r)?);
            }
            keyed.push((sort_key, r));
        }
    }

    if ops.distinct {
        return Ok(grouped_tail(keyed, ops));
    }
    sort_keyed(&mut keyed, &ops.order_by);
    let mut out_rows = Vec::with_capacity(keyed.len().min(ops.limit));
    for (_, r) in keyed.into_iter().take(ops.limit) {
        let mut out = Vec::with_capacity(ops.projections.len());
        for e in &ops.projections {
            out.push(eval(&ctx, e, &env, &r)?);
        }
        out_rows.push(out);
    }
    Ok(out_rows)
}

/// Stable multi-key sort shared by the grouped and plain ORDER BY paths.
fn sort_keyed(keyed: &mut [(Vec<Value>, Row)], order_by: &[(Expr, bool)]) {
    if order_by.is_empty() {
        return;
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in order_by.iter().enumerate() {
            let o = order_cmp(&ka[i], &kb[i]);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
}

/// DISTINCT ordering: sort deduplicated rows on projected column indices.
fn sort_by_output(keyed: &mut [(Vec<Value>, Row)], spec: &[(usize, bool)]) {
    if spec.is_empty() {
        return;
    }
    keyed.sort_by(|(_, ra), (_, rb)| {
        for (i, desc) in spec {
            let o = order_cmp(&ra[*i], &rb[*i]);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
}

/// Evaluate a plan's index access path into candidate rids (ascending —
/// index scans visit rows in rid order, so results match a sequential
/// scan byte for byte). `None` falls back to the sequential scan: no
/// access path was planned, the index vanished since planning (epoch
/// races), or a bound does not map into the key space (the per-row
/// comparison must then surface its own errors). Candidates are a
/// superset of the matches; the caller still applies snapshot visibility
/// and the full WHERE clause.
fn probe_access(
    ctx: &Ctx<'_>,
    access: Option<&IndexChoice>,
    guard: &Table,
    view: &TableView<'_>,
) -> Result<Option<Vec<usize>>> {
    let Some(a) = access else {
        return Ok(None);
    };
    let Some((ordinal, meta)) = guard.find_index(&a.index_name) else {
        return Ok(None);
    };
    if meta.column != a.column {
        return Ok(None);
    }
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let lo = match &a.lo {
        Some(e) => Some(eval(ctx, e, &env, &[])?),
        None => None,
    };
    let hi = match &a.hi {
        Some(e) => Some(eval(ctx, e, &env, &[])?),
        None => None,
    };
    Ok(view.probe(ordinal, a.space, lo.as_ref(), hi.as_ref()))
}

/// Execute a static SELECT plan. `lazy` allows the plain zero-copy path
/// to return an [`MvccScan`] cursor that streams the plan's snapshot in
/// batches; internal consumers that insert per source row (`INSERT …
/// SELECT`) pass `false` and get the output materialized up front
/// instead, so nothing interleaves with their writes.
/// The slots a zero-scan statement's batch must fill: every slot any of
/// `exprs` reads, deduplicated.
fn batch_slots<'e>(exprs: impl Iterator<Item = &'e Expr>) -> Vec<usize> {
    let mut slots: Vec<usize> = Vec::new();
    {
        let mut mark = |i: usize| slots.push(i);
        for e in exprs {
            walk_slots(e, &mut mark);
        }
    }
    slots.sort_unstable();
    slots.dedup();
    slots
}

/// Vectorized grouped accumulation: fill a column batch from the
/// visible-row view, evaluate the filter batch-at-a-time, materialize
/// key and aggregate-argument columns over the surviving selection, and
/// fold whole column slices per group. Returns the same
/// `(key values, aggregate values)` contract as [`grouped_groups`];
/// `Err(Fallback)` means the caller must re-run the scalar sweep.
fn vec_grouped(
    ctx: &Ctx<'_>,
    z: &ZeroScan,
    gp: &GroupPlan,
    schema: &Schema,
    view: &[&Row],
) -> batch::VResult<Vec<(Vec<Value>, Vec<Value>)>> {
    let db = ctx.db;
    let slots = batch_slots(
        z.where_clause
            .iter()
            .chain(&gp.keys)
            .chain(gp.aggs.iter().flat_map(|c| &c.args)),
    );
    let b = batch::Batch::fill(schema, view, &slots)?;
    db.note_batch_filled();
    let cx = batch::VecCtx {
        params: ctx.params,
        fns: ctx.fns,
    };
    let sel = batch::filter(z.where_clause.as_ref(), &b, &cx)?;
    let n = sel.len();
    let mut keys = Vec::with_capacity(gp.keys.len());
    for e in &gp.keys {
        keys.push(batch::eval(e, &b, &sel, &cx)?.materialize(n)?);
    }
    let mut aggs = Vec::with_capacity(gp.aggs.len());
    for c in &gp.aggs {
        let arg = match c.args.as_slice() {
            [] => None,
            [a] => Some(batch::eval(a, &b, &sel, &cx)?.materialize(n)?),
            _ => return Err(batch::Fallback),
        };
        aggs.push((c.op, arg));
    }
    let groups = batch::grouped_fold(&keys, &aggs, n)?;
    db.note_vectorized_op();
    // Same memoization contract the scalar sweep reports.
    db.note_agg_evals((groups.len() * gp.aggs.len()) as u64);
    Ok(groups)
}

/// Vectorized ordered SELECT: filter batch-at-a-time, sort indices over
/// the one typed key column — through the bounded top-K heap when a
/// LIMIT keeps fewer rows than survive the filter — and project only
/// the chosen rows. Returns the finished (sorted, limited) output rows;
/// `Err(Fallback)` means the caller must re-run the scalar path.
fn vec_ordered(
    ctx: &Ctx<'_>,
    z: &ZeroScan,
    order_by: &[(Expr, bool)],
    schema: &Schema,
    view: &[&Row],
    limit: usize,
    project: &dyn Fn(&Row) -> Result<Row>,
) -> batch::VResult<Vec<Row>> {
    let db = ctx.db;
    let [(key_expr, desc)] = order_by else {
        return Err(batch::Fallback);
    };
    let slots = batch_slots(z.where_clause.iter().chain([key_expr]));
    let b = batch::Batch::fill(schema, view, &slots)?;
    db.note_batch_filled();
    let cx = batch::VecCtx {
        params: ctx.params,
        fns: ctx.fns,
    };
    let sel = batch::filter(z.where_clause.as_ref(), &b, &cx)?;
    let n = sel.len();
    let key = batch::eval(key_expr, &b, &sel, &cx)?.materialize(n)?;
    let order = if limit < n {
        // NaN sort keys need the full stable sort to reproduce the
        // scalar "NaN compares equal" placement; the heap handles
        // every total-order column.
        batch::top_k_indices(&key, *desc, limit)
    } else {
        batch::sort_indices(&key, *desc)
    };
    db.note_vectorized_op();
    let mut out = Vec::with_capacity(order.len());
    for lane in order {
        let r = view[sel[lane as usize] as usize];
        out.push(project(r).map_err(|_| batch::Fallback)?);
    }
    Ok(out)
}

fn run_static_select<'db>(
    db: &'db Database,
    plan: &Arc<PhysicalPlan>,
    params: &[Value],
    lazy: bool,
) -> Result<Rows<'db>> {
    let PhysicalPlan::StaticSelect(sp) = &**plan else {
        unreachable!("run_static_select takes a static SELECT plan");
    };
    // Zero-copy scan: the plan classified every scan-side expression as
    // re-entrancy-free, so the statement runs directly over the table's
    // version array under the read guard — rows are borrowed, never
    // copied into an input snapshot, and only the projection of rows
    // that are snapshot-visible and survive the filter is materialized.
    if let Some(z) = &sp.zero {
        let handle = db.get_table(&sp.tables[0])?;
        let ctx = Ctx {
            db,
            params,
            fns: &sp.ops.fns,
            group: None,
        };
        let env = Env {
            bindings: NO_BINDINGS,
        };
        match &z.kind {
            // Grouped: the accumulation sweep folds borrowed rows under
            // the guard; emission (HAVING, projection, ORDER BY — which
            // may still call arbitrary UDFs) runs after it drops.
            ZeroScanKind::Grouped(gp) => {
                let groups = {
                    let guard = handle.read();
                    if !schema_matches(&guard.schema, &sp.schemas[0]) {
                        return Err(stale_plan(&sp.tables[0]));
                    }
                    let snap = db.current_snapshot();
                    let tview = guard.view();
                    let cand = probe_access(&ctx, z.access.as_ref(), &guard, &tview)?;
                    db.note_access(cand.is_some());
                    let mut examined = 0u64;
                    let groups = if z.vectorized {
                        // Vectorized: collect the visible-row view once,
                        // fill a column batch, and fold whole column
                        // slices per group. Any shape the typed kernels
                        // cannot reproduce byte-identically re-runs the
                        // scalar sweep over the same view, under the
                        // same guard and snapshot.
                        let view: Vec<&Row> = match &cand {
                            Some(pos) => tview.visible_at(pos, snap).collect(),
                            None => tview.visible(snap).collect(),
                        };
                        examined = view.len() as u64;
                        match vec_grouped(&ctx, z, gp, &guard.schema, &view) {
                            Ok(groups) => groups,
                            Err(batch::Fallback) => {
                                db.note_vectorized_fallback();
                                grouped_groups(
                                    &ctx,
                                    z.where_clause.as_ref(),
                                    gp,
                                    view.iter().copied(),
                                )?
                            }
                        }
                    } else {
                        match &cand {
                            Some(pos) => grouped_groups(
                                &ctx,
                                z.where_clause.as_ref(),
                                gp,
                                tview.visible_at(pos, snap).inspect(|_| examined += 1),
                            )?,
                            None => grouped_groups(
                                &ctx,
                                z.where_clause.as_ref(),
                                gp,
                                tview.visible(snap).inspect(|_| examined += 1),
                            )?,
                        }
                    };
                    db.note_scan(examined, true);
                    groups
                };
                let keyed = emit_groups(db, params, &sp.ops, groups)?;
                let rows = grouped_tail(keyed, &sp.ops);
                return Ok(Rows {
                    columns: sp.ops.columns.clone(),
                    state: RowsState::Done(rows.into_iter()),
                });
            }
            // Plain / DISTINCT / ordered SELECT: filter and project per
            // borrowed row; the sort (if any) runs after the guard
            // drops, over pruned projections instead of full-row clones.
            ZeroScanKind::Select {
                projections,
                order_by,
            } => {
                // Projection lists that are plain column references (the
                // common `SELECT a, b, c` shape) clone slots directly,
                // skipping expression dispatch per value.
                let slot_projs: Option<Vec<usize>> = projections
                    .iter()
                    .map(|e| match e {
                        Expr::Slot(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                let project = |r: &Row| -> Result<Row> {
                    match &slot_projs {
                        Some(slots) => Ok(slots.iter().map(|&i| r[i].clone()).collect()),
                        None => {
                            let mut out = Vec::with_capacity(projections.len());
                            for e in projections {
                                out.push(eval(&ctx, e, &env, r)?);
                            }
                            Ok(out)
                        }
                    }
                };
                let ordered = !order_by.is_empty() || !sp.ops.distinct_order.is_empty();
                if !ordered {
                    // True streaming: the cursor pins the table and an
                    // MVCC snapshot, then filters/projects borrowed rows
                    // in batches under short-lived read guards — early-
                    // stopping consumers pay only for what they read, and
                    // the consumer may write to the scanned table between
                    // batches (its writes are newer than the snapshot and
                    // stay invisible to the stream).
                    let (snap, cand) = {
                        let guard = handle.read();
                        if !schema_matches(&guard.schema, &sp.schemas[0]) {
                            return Err(stale_plan(&sp.tables[0]));
                        }
                        // Pin before loading the snapshot so compaction
                        // cannot renumber versions under the cursor (the
                        // same pin keeps any probed candidate positions
                        // valid across refills).
                        guard.pin();
                        let snap = db.current_snapshot();
                        let tview = guard.view();
                        match probe_access(&ctx, z.access.as_ref(), &guard, &tview) {
                            Ok(cand) => (snap, cand),
                            Err(e) => {
                                drop(tview);
                                guard.unpin();
                                return Err(e);
                            }
                        }
                    };
                    db.note_access(cand.is_some());
                    // Rows examined are charged when the cursor finishes
                    // (see `MvccScan::drop`); only the strategy is
                    // recorded here.
                    db.note_scan(0, true);
                    let cursor = Rows {
                        columns: sp.ops.columns.clone(),
                        state: RowsState::Mvcc(Box::new(MvccScan {
                            db,
                            params: params.to_vec(),
                            plan: Arc::clone(plan),
                            handle,
                            snap,
                            slot_projs,
                            cand,
                            cur_shard: 0,
                            next_version: 0,
                            unpinned_below: 0,
                            examined: 0,
                            buf: VecDeque::new(),
                            seen: sp.ops.distinct.then(HashSet::new),
                            remaining: sp.ops.limit,
                            failed: false,
                            pending_err: None,
                            done: false,
                        })),
                    };
                    if lazy {
                        return Ok(cursor);
                    }
                    return cursor.into_result().map(Rows::from_result);
                }
                // Sort keys and projections evaluate per surviving row;
                // the sort (and DISTINCT + LIMIT) runs on those pruned
                // projections after the guard drops.
                let guard = handle.read();
                if !schema_matches(&guard.schema, &sp.schemas[0]) {
                    return Err(stale_plan(&sp.tables[0]));
                }
                let snap = db.current_snapshot();
                let tview = guard.view();
                let cand = probe_access(&ctx, z.access.as_ref(), &guard, &tview)?;
                db.note_access(cand.is_some());
                let mut examined = 0u64;
                let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
                let per_row = |keyed: &mut Vec<(Vec<Value>, Row)>, r: &Row| -> Result<()> {
                    if let Some(p) = &z.where_clause {
                        if !is_true(&eval(&ctx, p, &env, r)?)? {
                            return Ok(());
                        }
                    }
                    let mut sort_key = Vec::with_capacity(order_by.len());
                    for (e, _) in order_by {
                        sort_key.push(eval(&ctx, e, &env, r)?);
                    }
                    keyed.push((sort_key, project(r)?));
                    Ok(())
                };
                let rows = 'rows: {
                    if z.vectorized {
                        // Vectorized: specialized single-key index sort
                        // (or the bounded top-K heap when LIMIT applies)
                        // over a typed key column; only the surviving
                        // rows are projected. A batch the kernels cannot
                        // reproduce re-runs the scalar path over the
                        // same view.
                        let view: Vec<&Row> = match &cand {
                            Some(pos) => tview.visible_at(pos, snap).collect(),
                            None => tview.visible(snap).collect(),
                        };
                        examined = view.len() as u64;
                        match vec_ordered(
                            &ctx,
                            z,
                            order_by,
                            &guard.schema,
                            &view,
                            sp.ops.limit,
                            &project,
                        ) {
                            Ok(rows) => break 'rows rows,
                            Err(batch::Fallback) => {
                                db.note_vectorized_fallback();
                                for r in view {
                                    per_row(&mut keyed, r)?;
                                }
                            }
                        }
                    } else {
                        match &cand {
                            Some(pos) => {
                                for r in tview.visible_at(pos, snap) {
                                    examined += 1;
                                    per_row(&mut keyed, r)?;
                                }
                            }
                            None => {
                                for r in tview.visible(snap) {
                                    examined += 1;
                                    per_row(&mut keyed, r)?;
                                }
                            }
                        }
                    }
                    grouped_tail(keyed, &sp.ops)
                };
                db.note_scan(examined, true);
                drop(tview);
                drop(guard);
                return Ok(Rows {
                    columns: sp.ops.columns.clone(),
                    state: RowsState::Done(rows.into_iter()),
                });
            }
        }
    }
    let rows = scan_tables(
        db,
        &sp.tables,
        &sp.schemas,
        &sp.used_cols,
        sp.hash_join.as_ref(),
    )?;
    run_select(db, OpsSource::Plan(Arc::clone(plan)), rows, params)
}

fn run_dynamic_select<'db>(
    db: &'db Database,
    sel: &SelectStmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    let (bindings, rows) = scan_from(db, params, &sel.from)?;
    let ops = crate::plan::build_select(db, sel, &bindings)?;
    run_select(db, OpsSource::Owned(Box::new(ops)), rows, params)
}

// ---------------------------------------------------------------------------
// DML / DDL execution
// ---------------------------------------------------------------------------

/// One-row `count` status result shared by the DML statements.
fn count_result<'db>(n: i64) -> Rows<'db> {
    let mut q = QueryResult::new(vec!["count".into()]);
    q.rows.push(vec![Value::Int(n)]);
    Rows::from_result(q)
}

/// Map a source row onto the target schema through an INSERT column list.
fn map_insert_row(r: Row, ip: &InsertPlan) -> Result<Row> {
    match &ip.column_idxs {
        None => Ok(r),
        Some(idxs) => {
            if r.len() != idxs.len() {
                return Err(SqlError::Constraint(format!(
                    "INSERT row has {} values for {} columns",
                    r.len(),
                    idxs.len()
                )));
            }
            let mut full = vec![Value::Null; ip.schema_len];
            for (v, &i) in r.into_iter().zip(idxs) {
                full[i] = v;
            }
            Ok(full)
        }
    }
}

/// First-updater-wins write conflict under snapshot isolation
/// (PostgreSQL's REPEATABLE READ wording).
fn serialize_conflict() -> SqlError {
    SqlError::Execution("could not serialize access due to concurrent update".into())
}

/// RAII table pin for auto-commit writes that hold version indices
/// across guard releases: blocks compaction (which renumbers versions)
/// until the statement finishes. Transactional writes pin through
/// [`Database::txn_pin`] instead, which holds until COMMIT/ROLLBACK.
struct TablePin<'a> {
    handle: &'a Arc<parking_lot::RwLock<Table>>,
}

impl<'a> TablePin<'a> {
    fn new(handle: &'a Arc<parking_lot::RwLock<Table>>) -> TablePin<'a> {
        handle.read().pin();
        TablePin { handle }
    }
}

impl Drop for TablePin<'_> {
    fn drop(&mut self) {
        self.handle.read().unpin();
    }
}

/// The begin/end stamp for one statement's versioned writes: a fresh
/// commit timestamp in auto-commit (allocate it while holding the write
/// guard — see [`Database::commit_ts`]), or the open transaction's
/// marker, resolved later by COMMIT/ROLLBACK.
fn write_stamp(db: &Database, txn: WriteTxn) -> u64 {
    match txn {
        WriteTxn::Auto => db.commit_ts(),
        WriteTxn::Txn { txid } => UNCOMMITTED | txid,
    }
}

/// The owning transaction id for unique-constraint checks (0 in
/// auto-commit: every pending version then counts as a conflict).
fn stmt_txid(txn: WriteTxn) -> u64 {
    match txn {
        WriteTxn::Txn { txid } => txid,
        WriteTxn::Auto => 0,
    }
}

/// Concurrent-append fast path for INSERT on a sharded table: under the
/// outer *read* guard, coerce every row, then take only the calling
/// thread's home-shard write lock — disjoint-row writers proceed in
/// parallel. The auto-commit stamp is allocated while the shard lock is
/// held, so a snapshot at or above it blocks on this one shard until
/// every row of the statement is in (no torn statement). Returns `false`
/// — with `rows` untouched — when the table needs the exclusive path
/// instead: single-shard databases, or unique indexes (whose conflict
/// checks need a stable view of every shard).
fn concurrent_insert(
    db: &Database,
    handle: &Arc<parking_lot::RwLock<Table>>,
    ip: &InsertPlan,
    txn: WriteTxn,
    rows: &mut Vec<Row>,
) -> Result<bool> {
    if db.table_shards() == 1 {
        return Ok(false);
    }
    let guard = handle.read();
    if guard.has_unique_index() {
        return Ok(false);
    }
    let coerced: Result<Vec<Row>> = std::mem::take(rows)
        .into_iter()
        .map(|r| map_insert_row(r, ip).and_then(|r| guard.coerce_row(r)))
        .collect();
    let coerced = coerced?;
    let mut append = guard.begin_append();
    if append.waited() {
        db.note_shard_wait();
    }
    let begin = write_stamp(db, txn);
    let created: Vec<usize> = coerced.into_iter().map(|r| append.push(begin, r)).collect();
    drop(append);
    drop(guard);
    if let WriteTxn::Txn { .. } = txn {
        db.txn_record_write(handle, created, Vec::new());
    }
    Ok(true)
}

fn run_insert<'db>(
    db: &'db Database,
    stmt: &Stmt,
    ip: &InsertPlan,
    params: &[Value],
) -> Result<Rows<'db>> {
    let Stmt::Insert { source, .. } = stmt else {
        unreachable!("insert plan compiled from a non-INSERT statement");
    };
    let handle = db.get_table(&ip.table)?;
    // The plan's column mapping is positional: if the target's schema
    // changed since planning (a DDL race past the epoch check), fail as
    // stale instead of silently mapping values into the wrong columns.
    // One check suffices — a table object's schema never mutates (DDL
    // replaces the whole table), so the handle stays consistent with it.
    if !schema_matches(&handle.read().schema, &ip.schema_cols) {
        return Err(stale_plan(&ip.table));
    }
    let txn = db.write_txn();
    if let WriteTxn::Txn { .. } = txn {
        db.txn_pin(&handle);
    }
    let n = match source {
        InsertSource::Values(rows) => {
            let ctx = Ctx {
                db,
                params,
                fns: NO_FNS,
                group: None,
            };
            let env = Env {
                bindings: NO_BINDINGS,
            };
            // Evaluate before taking the guard: VALUES expressions may
            // call UDFs that re-enter the database.
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let vals: Result<Row> = row.iter().map(|e| eval(&ctx, e, &env, &[])).collect();
                out.push(vals?);
            }
            let n = out.len();
            if !concurrent_insert(db, &handle, ip, txn, &mut out)? {
                let mut guard = handle.write();
                let begin = write_stamp(db, txn);
                // Coerce every row before appending any, so an arity or
                // type error (or a duplicate, when a unique index exists)
                // leaves the table untouched.
                let coerced: Result<Vec<Row>> = out
                    .into_iter()
                    .map(|r| map_insert_row(r, ip).and_then(|r| guard.coerce_row(r)))
                    .collect();
                let coerced = coerced?;
                if guard.has_unique_index() {
                    guard.check_unique(&coerced, &[], stmt_txid(txn))?;
                }
                let created: Vec<usize> = coerced
                    .into_iter()
                    .map(|r| guard.push_version(begin, r))
                    .collect();
                if let WriteTxn::Txn { .. } = txn {
                    drop(guard);
                    db.txn_record_write(&handle, created, Vec::new());
                }
            }
            n
        }
        InsertSource::Select(sel) => {
            // The source runs with `lazy = false`, so a zero-copy static
            // source arrives fully materialized before any insert — which
            // is why INSERT INTO t SELECT FROM t observes only the
            // pre-statement rows — while snapshot/dynamic sources stream
            // lazily off their guard-free input copy.
            let src_plan = ip
                .source
                .as_ref()
                .expect("INSERT … SELECT has a source plan");
            let src = match &**src_plan {
                PhysicalPlan::StaticSelect(_) => run_static_select(db, src_plan, params, false)?,
                PhysicalPlan::DynamicSelect => run_dynamic_select(db, sel, params)?,
                _ => unreachable!("INSERT source compiles to a SELECT plan"),
            };
            let mut n = 0usize;
            match src.state {
                // Fully materialized source: nothing is evaluated per
                // row anymore, so one write guard covers the whole batch
                // instead of a lock round-trip per row. Coercion and
                // append run in one pass; an error truncates the
                // appended tail, leaving the table untouched.
                RowsState::Done(it) => {
                    let mut rows: Vec<Row> = it.collect();
                    n = rows.len();
                    if !concurrent_insert(db, &handle, ip, txn, &mut rows)? {
                        let mut guard = handle.write();
                        let begin = write_stamp(db, txn);
                        let coerced: Result<Vec<Row>> = rows
                            .into_iter()
                            .map(|r| map_insert_row(r, ip).and_then(|r| guard.coerce_row(r)))
                            .collect();
                        let coerced = coerced?;
                        if guard.has_unique_index() {
                            guard.check_unique(&coerced, &[], stmt_txid(txn))?;
                        }
                        let created: Vec<usize> = coerced
                            .into_iter()
                            .map(|r| guard.push_version(begin, r))
                            .collect();
                        if let WriteTxn::Txn { .. } = txn {
                            drop(guard);
                            db.txn_record_write(&handle, created, Vec::new());
                        }
                    }
                }
                // Lazy sources still evaluate expressions (possibly
                // re-entrant UDFs) per row: the write lock stays scoped
                // to each append so those evaluations run lock-free. The
                // appends are marked uncommitted under a transaction id
                // and stamped only when the stream finishes — an error
                // mid-stream tombstones what was inserted, so the
                // statement is atomic despite releasing the lock.
                state => {
                    let src = Rows {
                        columns: src.columns,
                        state,
                    };
                    let _pin = match txn {
                        // Version indices survive guard releases only
                        // while the table is pinned against compaction.
                        WriteTxn::Auto => Some(TablePin::new(&handle)),
                        WriteTxn::Txn { .. } => None, // pinned via the txn
                    };
                    let txid = match txn {
                        WriteTxn::Txn { txid } => txid,
                        WriteTxn::Auto => db.next_txid(),
                    };
                    let mut created: Vec<usize> = Vec::new();
                    let mut err = None;
                    for r in src {
                        let step = r.and_then(|row| map_insert_row(row, ip)).and_then(|full| {
                            let mut guard = handle.write();
                            let full = guard.coerce_row(full)?;
                            // Streamed rows check one by one: earlier
                            // appends of this statement are pending under
                            // the same txid, so in-stream duplicates
                            // conflict exactly like committed ones.
                            if guard.has_unique_index() {
                                guard.check_unique(std::slice::from_ref(&full), &[], txid)?;
                            }
                            created.push(guard.push_version(UNCOMMITTED | txid, full));
                            Ok(())
                        });
                        match step {
                            Ok(()) => n += 1,
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    match (err, txn) {
                        (Some(e), _) => {
                            // Undo this statement's own appends; under an
                            // explicit transaction they were never
                            // recorded in the undo log, so no double
                            // revert on ROLLBACK.
                            let mut guard = handle.write();
                            for &i in &created {
                                guard.revert_insert(i, txid);
                            }
                            return Err(e);
                        }
                        (None, WriteTxn::Auto) => {
                            let mut guard = handle.write();
                            let cts = db.commit_ts();
                            for &i in &created {
                                guard.commit_begin(i, txid, cts);
                            }
                        }
                        (None, WriteTxn::Txn { .. }) => {
                            db.txn_record_write(&handle, created, Vec::new());
                        }
                    }
                }
            }
            n
        }
    };
    Ok(count_result(n as i64))
}

/// UPDATE: evaluate the predicate and SET expressions against each
/// snapshot-visible row, then end the old version and append the new one
/// under the statement's write stamp. When every expression is
/// re-entrancy-free (the planned common case) the whole statement runs
/// under one write guard; re-entrant expressions keep a lock-free
/// evaluate-then-apply path so UDFs in SET or WHERE may call back into
/// the database. Either way, a visible version already ended by another
/// transaction is a first-updater-wins conflict.
fn run_update<'db>(db: &'db Database, up: &DmlPlan, params: &[Value]) -> Result<Rows<'db>> {
    let ctx = Ctx {
        db,
        params,
        fns: &up.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let handle = db.get_table(&up.table)?;
    let txn = db.write_txn();
    if let WriteTxn::Txn { .. } = txn {
        db.txn_pin(&handle);
    }
    if up.in_place {
        let mut guard = handle.write();
        if !schema_matches(&guard.schema, &up.schema_cols) {
            return Err(stale_plan(&up.table));
        }
        let snap = db.current_snapshot();
        // Pass 1 (read-only): evaluate the predicate per visible row
        // and, for hits, the new values against the *old* row. Errors —
        // including write conflicts — surface before any mutation.
        let mut pending: Vec<(usize, Vec<Value>)> = Vec::new();
        let mut examined = 0u64;
        let set_types: Vec<_> = up
            .set_idx
            .iter()
            .map(|&c| guard.schema.columns[c].dtype)
            .collect();
        for (vi, v) in guard.visible_versions(snap) {
            examined += 1;
            let r = &v.data;
            let hit = match &up.where_clause {
                None => true,
                Some(p) => is_true(&eval(&ctx, p, &env, r)?)?,
            };
            if !hit {
                continue;
            }
            if v.end != LIVE {
                return Err(serialize_conflict());
            }
            let mut vals = Vec::with_capacity(up.sets.len());
            for (e, &dt) in up.sets.iter().zip(&set_types) {
                let val = eval(&ctx, e, &env, r)?;
                vals.push(val.coerce_to(dt)?);
            }
            pending.push((vi, vals));
        }
        db.note_scan(examined, true);
        // Unique check, still before any mutation: the candidate rows
        // are the old rows with the SET columns applied, and the
        // versions they replace cannot conflict with themselves.
        if guard.has_unique_index() && !pending.is_empty() {
            let superseded: Vec<usize> = pending.iter().map(|&(vi, _)| vi).collect();
            let new_rows: Vec<Row> = pending
                .iter()
                .map(|(vi, vals)| {
                    let mut r = guard.version_data(*vi).clone();
                    for (v, &c) in vals.iter().zip(&up.set_idx) {
                        r[c] = v.clone();
                    }
                    r
                })
                .collect();
            guard.check_unique(&new_rows, &superseded, stmt_txid(txn))?;
        }
        // Pass 2: end each hit version and append its successor — or,
        // when no snapshot below the fresh commit timestamp is live and
        // no cursor pins this table, overwrite the payloads in place:
        // the single-version fast path, which creates no garbage.
        let n = pending.len() as i64;
        match txn {
            WriteTxn::Auto => {
                let cts = db.commit_ts();
                if !guard.pinned() && db.overwrite_safe(cts) {
                    for (vi, vals) in pending {
                        guard.overwrite_version(vi, &up.set_idx, vals);
                    }
                } else {
                    for (vi, vals) in pending {
                        let mut new_row = guard.version_data(vi).clone();
                        for (v, &c) in vals.into_iter().zip(&up.set_idx) {
                            new_row[c] = v;
                        }
                        guard.end_version(vi, cts);
                        guard.push_version(cts, new_row);
                    }
                }
                db.maybe_gc(&mut guard);
            }
            WriteTxn::Txn { txid } => {
                let stamp = UNCOMMITTED | txid;
                let mut created = Vec::with_capacity(pending.len());
                let mut ended = Vec::with_capacity(pending.len());
                for (vi, vals) in pending {
                    let mut new_row = guard.version_data(vi).clone();
                    for (v, &c) in vals.into_iter().zip(&up.set_idx) {
                        new_row[c] = v;
                    }
                    guard.end_version(vi, stamp);
                    ended.push(vi);
                    created.push(guard.push_version(stamp, new_row));
                }
                drop(guard);
                db.txn_record_write(&handle, created, ended);
            }
        }
        return Ok(count_result(n));
    }
    // Re-entrant fallback: evaluation must run without the lock so the
    // expressions may call back into the database. The visible versions
    // are copied out with their indices (the pin keeps those indices
    // stable), evaluated lock-free, and applied under one write guard
    // with a conflict re-check per version.
    let _pin = match txn {
        WriteTxn::Auto => Some(TablePin::new(&handle)),
        WriteTxn::Txn { .. } => None, // pinned via the txn
    };
    let snap = db.current_snapshot();
    let (dtypes, snapshot) = {
        let g = handle.read();
        if !schema_matches(&g.schema, &up.schema_cols) {
            return Err(stale_plan(&up.table));
        }
        let dtypes: Vec<_> = g.schema.columns.iter().map(|c| c.dtype).collect();
        let view = g.view();
        let snapshot: Vec<(usize, Row)> = view
            .visible_versions(snap)
            .map(|(vi, v)| (vi, v.data.clone()))
            .collect();
        db.note_scan(snapshot.len() as u64, false);
        (dtypes, snapshot)
    };
    let mut pending: Vec<(usize, Row)> = Vec::new();
    for (vi, r) in snapshot {
        let hit = match &up.where_clause {
            None => true,
            Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
        };
        if !hit {
            continue;
        }
        let mut updated = r.clone();
        for (e, &i) in up.sets.iter().zip(&up.set_idx) {
            let v = eval(&ctx, e, &env, &r)?;
            updated[i] = v.coerce_to(dtypes[i])?;
        }
        pending.push((vi, updated));
    }
    let n = pending.len() as i64;
    let mut guard = handle.write();
    for &(vi, _) in &pending {
        if guard.version_end(vi) != LIVE {
            return Err(serialize_conflict());
        }
    }
    if guard.has_unique_index() && !pending.is_empty() {
        let superseded: Vec<usize> = pending.iter().map(|&(vi, _)| vi).collect();
        let new_rows: Vec<Row> = pending.iter().map(|(_, r)| r.clone()).collect();
        guard.check_unique(&new_rows, &superseded, stmt_txid(txn))?;
    }
    let stamp = write_stamp(db, txn);
    let mut created = Vec::with_capacity(pending.len());
    let mut ended = Vec::with_capacity(pending.len());
    for (vi, new_row) in pending {
        guard.end_version(vi, stamp);
        ended.push(vi);
        created.push(guard.push_version(stamp, new_row));
    }
    match txn {
        WriteTxn::Auto => db.maybe_gc(&mut guard),
        WriteTxn::Txn { .. } => {
            drop(guard);
            db.txn_record_write(&handle, created, ended);
        }
    }
    Ok(count_result(n))
}

/// DELETE: end the visible version of each matching row under the
/// statement's write stamp — survivors are never touched, and the dead
/// versions are reclaimed later by the GC watermark. A re-entrant
/// predicate falls back to lock-free evaluation over a copied-out
/// snapshot, applied with a conflict re-check per version.
fn run_delete<'db>(db: &'db Database, dp: &DmlPlan, params: &[Value]) -> Result<Rows<'db>> {
    let ctx = Ctx {
        db,
        params,
        fns: &dp.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let handle = db.get_table(&dp.table)?;
    let txn = db.write_txn();
    if let WriteTxn::Txn { .. } = txn {
        db.txn_pin(&handle);
    }
    if dp.in_place {
        let mut guard = handle.write();
        if !schema_matches(&guard.schema, &dp.schema_cols) {
            return Err(stale_plan(&dp.table));
        }
        let snap = db.current_snapshot();
        let mut hits: Vec<usize> = Vec::new();
        let mut examined = 0u64;
        for (vi, v) in guard.visible_versions(snap) {
            examined += 1;
            let hit = match &dp.where_clause {
                None => true,
                Some(p) => is_true(&eval(&ctx, p, &env, &v.data)?)?,
            };
            if !hit {
                continue;
            }
            if v.end != LIVE {
                return Err(serialize_conflict());
            }
            hits.push(vi);
        }
        db.note_scan(examined, true);
        let n = hits.len() as i64;
        match txn {
            WriteTxn::Auto => {
                let cts = db.commit_ts();
                if !guard.pinned() && db.overwrite_safe(cts) {
                    // Single-version fast path: nothing can ever read
                    // these versions again, so remove them outright.
                    guard.remove_versions(&hits);
                } else {
                    for &vi in &hits {
                        guard.end_version(vi, cts);
                    }
                }
                db.maybe_gc(&mut guard);
            }
            WriteTxn::Txn { txid } => {
                for &vi in &hits {
                    guard.end_version(vi, UNCOMMITTED | txid);
                }
                drop(guard);
                db.txn_record_write(&handle, Vec::new(), hits);
            }
        }
        return Ok(count_result(n));
    }
    let _pin = match txn {
        WriteTxn::Auto => Some(TablePin::new(&handle)),
        WriteTxn::Txn { .. } => None, // pinned via the txn
    };
    let snap = db.current_snapshot();
    let snapshot = {
        let g = handle.read();
        if !schema_matches(&g.schema, &dp.schema_cols) {
            return Err(stale_plan(&dp.table));
        }
        let view = g.view();
        let snapshot: Vec<(usize, Row)> = view
            .visible_versions(snap)
            .map(|(vi, v)| (vi, v.data.clone()))
            .collect();
        db.note_scan(snapshot.len() as u64, false);
        snapshot
    };
    let mut hits: Vec<usize> = Vec::new();
    for (vi, r) in snapshot {
        let hit = match &dp.where_clause {
            None => true,
            Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
        };
        if hit {
            hits.push(vi);
        }
    }
    let n = hits.len() as i64;
    let mut guard = handle.write();
    for &vi in &hits {
        if guard.version_end(vi) != LIVE {
            return Err(serialize_conflict());
        }
    }
    let stamp = write_stamp(db, txn);
    for &vi in &hits {
        guard.end_version(vi, stamp);
    }
    match txn {
        WriteTxn::Auto => db.maybe_gc(&mut guard),
        WriteTxn::Txn { .. } => {
            drop(guard);
            db.txn_record_write(&handle, Vec::new(), hits);
        }
    }
    Ok(count_result(n))
}

/// The no-rows status result of DDL and transaction-control statements.
fn empty_result<'db>() -> Rows<'db> {
    Rows::from_result(QueryResult::new(vec![]))
}

/// A session-level notice surfaced as a one-row result. PostgreSQL sends
/// these out-of-band as `NOTICE` messages; sqlmini has no wire protocol,
/// so the text rides in a `notice` column instead.
fn notice_result<'db>(msg: &str) -> Rows<'db> {
    let mut q = QueryResult::new(vec!["notice".into()]);
    q.rows.push(vec![Value::Text(msg.into())]);
    Rows::from_result(q)
}

/// DDL and transaction control — statements without a compiled operator
/// tree.
fn run_other<'db>(db: &'db Database, stmt: &Stmt) -> Result<Rows<'db>> {
    match stmt {
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let cols = columns
                .iter()
                .map(|(n, t)| Column::new(n, *t))
                .collect::<Vec<_>>();
            let schema = Schema::new(cols)?;
            match db.create_table(name, Table::new(schema)) {
                Ok(()) => db.txn_record_ddl(UndoEntry::CreateTable {
                    name: name.to_ascii_lowercase(),
                }),
                Err(SqlError::Constraint(_)) if *if_not_exists => {}
                Err(e) => return Err(e),
            }
            Ok(empty_result())
        }
        Stmt::DropTable { name, if_exists } => {
            // Hold on to the displaced table so ROLLBACK can reinstate
            // it — versions, stats and all.
            let displaced = db.get_table(name).ok();
            match db.drop_table(name) {
                Ok(()) => {
                    if let Some(handle) = displaced {
                        db.txn_record_ddl(UndoEntry::DropTable {
                            name: name.to_ascii_lowercase(),
                            handle,
                        });
                    }
                }
                Err(SqlError::UnknownTable(_)) if *if_exists => {}
                Err(e) => return Err(e),
            }
            Ok(empty_result())
        }
        Stmt::Begin => {
            if db.begin_txn() {
                Ok(empty_result())
            } else {
                Ok(notice_result("there is already a transaction in progress"))
            }
        }
        Stmt::Commit => {
            if db.commit_txn()? {
                Ok(empty_result())
            } else {
                Ok(notice_result("there is no transaction in progress"))
            }
        }
        Stmt::Rollback => {
            if db.rollback_txn() {
                Ok(empty_result())
            } else {
                Ok(notice_result("there is no transaction in progress"))
            }
        }
        Stmt::CreateIndex {
            name,
            table,
            column,
            unique,
        } => {
            let handle = db.create_index(name, table, column, *unique)?;
            db.txn_record_ddl(UndoEntry::CreateIndex {
                table: handle,
                name: name.to_ascii_lowercase(),
            });
            Ok(empty_result())
        }
        Stmt::DropIndex { name } => {
            let (table, iname, column, unique) = db.drop_index(name)?;
            db.txn_record_ddl(UndoEntry::DropIndex {
                table,
                name: iname,
                column,
                unique,
            });
            Ok(empty_result())
        }
        Stmt::Analyze(table) => {
            db.analyze(table.as_deref())?;
            Ok(empty_result())
        }
        Stmt::Select(_)
        | Stmt::Insert { .. }
        | Stmt::Update { .. }
        | Stmt::Delete { .. }
        | Stmt::Explain(_) => {
            unreachable!("DML and EXPLAIN execute through their compiled plans")
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Execute a statement against its compiled plan with bind parameters;
/// `SELECT`s stream through [`Rows`], everything else returns its (tiny)
/// materialized status result.
pub(crate) fn execute<'db>(
    db: &'db Database,
    stmt: &Stmt,
    plan: &Arc<PhysicalPlan>,
    params: &[Value],
) -> Result<Rows<'db>> {
    // Inside an aborted transaction every statement except COMMIT /
    // ROLLBACK is rejected with PostgreSQL's wording; and a failed
    // statement aborts the enclosing transaction, as in PostgreSQL.
    if !matches!(stmt, Stmt::Commit | Stmt::Rollback) {
        db.check_txn_ok()?;
    }
    let result = match &**plan {
        PhysicalPlan::StaticSelect(_) => run_static_select(db, plan, params, true),
        PhysicalPlan::DynamicSelect => {
            let Stmt::Select(sel) = stmt else {
                unreachable!("dynamic SELECT plan compiled from a non-SELECT statement");
            };
            run_dynamic_select(db, sel, params)
        }
        PhysicalPlan::Insert(ip) => run_insert(db, stmt, ip, params),
        PhysicalPlan::Update(up) => run_update(db, up, params),
        PhysicalPlan::Delete(dp) => run_delete(db, dp, params),
        PhysicalPlan::Explain(lines) => {
            let mut q = QueryResult::new(vec!["query plan".into()]);
            for l in lines {
                q.rows.push(vec![Value::Text(l.clone())]);
            }
            Ok(Rows::from_result(q))
        }
        PhysicalPlan::Other => run_other(db, stmt),
    };
    if result.is_err() {
        db.abort_txn();
    }
    result
}

/// Compile and execute one statement, materializing the result. Used by
/// the uncached execution path; prepared statements share their plan
/// through the statement cache instead.
pub fn execute_stmt(db: &Database, stmt: &Stmt, params: &[Value]) -> Result<QueryResult> {
    execute_stmt_rows(db, stmt, params)?.into_result()
}

/// Compile and execute one statement, streaming the result rows.
pub fn execute_stmt_rows<'db>(
    db: &'db Database,
    stmt: &Stmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    // Mirror `Statement::query_rows`: aborted transactions reject the
    // statement before planning, and a plan-time failure aborts an open
    // transaction just like an execution failure.
    if !matches!(stmt, Stmt::Commit | Stmt::Rollback) {
        db.check_txn_ok()?;
    }
    let plan = Arc::new(crate::plan::compile(db, stmt).inspect_err(|_| db.abort_txn())?);
    db.note_plan_built();
    execute(db, stmt, &plan, params)
}
