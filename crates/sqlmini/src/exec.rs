//! Query executor: expression evaluation, cross/lateral joins, filtering,
//! projection, grouped aggregation, ordering.
//!
//! Execution is parameterized: every entry point takes a slice of bind
//! values for `$n` placeholders (empty for plain statements). `SELECT`
//! results can be consumed through the streaming [`Rows`] iterator —
//! filtering and projection run per `next()` call, so callers that stop
//! early (or decode row-by-row) never materialize the full output. Queries
//! with `ORDER BY`, `GROUP BY` or aggregates are materialized up front, as
//! ordering and grouping are pipeline breakers.
//!
//! Grouped aggregation is a hash operator: each input row's `GROUP BY` key
//! is evaluated and hashed (NULLs group together, `-0.0`/`NaN` are
//! canonicalized), rows are bucketed per key in one pass, and every output
//! expression is then rewritten per group — grouping expressions become the
//! key values, aggregate calls collapse over the bucket — before ordinary
//! scalar evaluation. References to ungrouped columns and aggregates in
//! `WHERE`/`GROUP BY` fail with PostgreSQL's wording.

use std::cmp::Ordering;
use std::collections::{hash_map::Entry, HashMap};

use crate::ast::{
    contains_aggregate, BinOp, Expr, FromItem, InsertSource, SelectItem, SelectStmt, Stmt, UnOp,
    AGGREGATE_FUNCTIONS,
};
use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::table::{Column, QueryResult, Row, Schema, Table};
use crate::value::Value;

/// Everything expression evaluation needs besides the row: the database
/// (for UDF calls) and the statement's bind parameters.
struct Ctx<'a> {
    db: &'a Database,
    params: &'a [Value],
}

/// One FROM item's contribution to the name environment.
#[derive(Debug, Clone)]
struct Binding {
    qualifier: String,
    columns: Vec<String>,
    /// Offset of this binding's first column in the flattened row.
    offset: usize,
}

/// Name environment over a flattened joined row.
struct Env<'a> {
    bindings: &'a [Binding],
}

impl Env<'_> {
    /// Resolve a column reference to a flat index.
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let mut found: Option<usize> = None;
        for b in self.bindings {
            if let Some(q) = table {
                if !q.eq_ignore_ascii_case(&b.qualifier) {
                    continue;
                }
            }
            if let Some(i) = b.columns.iter().position(|c| *c == name) {
                if found.is_some() {
                    return Err(SqlError::UnknownColumn(format!(
                        "{name} (ambiguous reference)"
                    )));
                }
                found = Some(b.offset + i);
            }
        }
        found.ok_or_else(|| match table {
            Some(t) => SqlError::UnknownColumn(format!("{t}.{name}")),
            None => SqlError::UnknownColumn(name),
        })
    }
}

// ---------------------------------------------------------------------------
// Value operations
// ---------------------------------------------------------------------------

/// Three-valued comparison; `None` when either side is NULL.
pub fn compare(a: &Value, b: &Value) -> Result<Option<Ordering>> {
    use Value::*;
    Ok(Some(match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Int(x), Float(y)) => (*x as f64)
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Float(x), Int(y)) => x
            .partial_cmp(&(*y as f64))
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Text(x), Text(y)) => x.cmp(y),
        (Bool(x), Bool(y)) => x.cmp(y),
        (Timestamp(x), Timestamp(y)) => x.cmp(y),
        (Timestamp(x), Text(y)) => x.cmp(&crate::value::parse_timestamp(y)?),
        (Text(x), Timestamp(y)) => crate::value::parse_timestamp(x)?.cmp(y),
        (Interval(x), Interval(y)) => x.cmp(y),
        (x, y) => {
            return Err(SqlError::Type(format!(
                "cannot compare {} with {}",
                x.data_type().name(),
                y.data_type().name()
            )))
        }
    }))
}

/// Total ordering used by ORDER BY: NULLs sort last, mixed numerics compare
/// numerically.
pub fn order_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => compare(a, b).ok().flatten().unwrap_or(Ordering::Equal),
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    Ok(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x + y),
        (BinOp::Sub, Int(x), Int(y)) => Int(x - y),
        (BinOp::Mul, Int(x), Int(y)) => Int(x * y),
        (BinOp::Div, Int(x), Int(y)) => {
            if *y == 0 {
                return Err(SqlError::Execution("division by zero".into()));
            }
            Int(x / y)
        }
        // timestamp/interval arithmetic
        (BinOp::Add, Timestamp(t), Interval(i)) | (BinOp::Add, Interval(i), Timestamp(t)) => {
            Timestamp(t + i)
        }
        (BinOp::Sub, Timestamp(t), Interval(i)) => Timestamp(t - i),
        (BinOp::Sub, Timestamp(x), Timestamp(y)) => Interval(x - y),
        (BinOp::Add, Interval(x), Interval(y)) => Interval(x + y),
        (BinOp::Sub, Interval(x), Interval(y)) => Interval(x - y),
        (BinOp::Mul, Interval(x), Int(y)) | (BinOp::Mul, Int(y), Interval(x)) => Interval(x * y),
        // float-promoting arithmetic
        (op, x, y) => {
            let xf = x.as_f64()?;
            let yf = y.as_f64()?;
            match op {
                BinOp::Add => Float(xf + yf),
                BinOp::Sub => Float(xf - yf),
                BinOp::Mul => Float(xf * yf),
                BinOp::Div => {
                    if yf == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    Float(xf / yf)
                }
                _ => unreachable!("arith called with non-arithmetic operator"),
            }
        }
    })
}

fn logical(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    let lhs = match a {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let rhs = match b {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    // Kleene three-valued logic.
    Ok(match op {
        BinOp::And => match (lhs, rhs) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (lhs, rhs) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("logical called with non-logical operator"),
    })
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, row: &[Value]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => ctx
            .params
            .get(*i - 1)
            .cloned()
            .ok_or_else(|| SqlError::Execution(format!("there is no parameter ${i}"))),
        Expr::Column { table, name } => {
            let i = env.resolve(table.as_deref(), name)?;
            Ok(row[i].clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, env, row)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Interval(i) => Ok(Value::Interval(-i)),
                    other => Err(SqlError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    v => Ok(Value::Bool(!v.as_bool()?)),
                },
            }
        }
        Expr::Binary { op, left, right } => {
            let a = eval(ctx, left, env, row)?;
            let b = eval(ctx, right, env, row)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &a, &b),
                BinOp::And | BinOp::Or => logical(*op, &a, &b),
                BinOp::Concat => {
                    if a.is_null() || b.is_null() {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Text(format!("{a}{b}")))
                    }
                }
                cmp => {
                    let ord = compare(&a, &b)?;
                    Ok(match ord {
                        None => Value::Null,
                        Some(o) => Value::Bool(match cmp {
                            BinOp::Eq => o == Ordering::Equal,
                            BinOp::Ne => o != Ordering::Equal,
                            BinOp::Lt => o == Ordering::Less,
                            BinOp::Le => o != Ordering::Greater,
                            BinOp::Gt => o == Ordering::Greater,
                            BinOp::Ge => o != Ordering::Less,
                            _ => unreachable!(),
                        }),
                    })
                }
            }
        }
        Expr::Cast { expr, ty } => eval(ctx, expr, env, row)?.cast_to(*ty),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let probe = eval(ctx, expr, env, row)?;
            if probe.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(ctx, item, env, row)?;
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                if compare(&probe, &v)? == Some(Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, env, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Function { name, args } => {
            if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                return Err(SqlError::Execution(format!(
                    "aggregate function {name}() is not allowed here"
                )));
            }
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval(ctx, a, env, row)).collect();
            ctx.db.call_scalar(name, &vals?)
        }
    }
}

/// Predicate-clause truthiness: NULL is not true. `clause` names the
/// clause in the type error (`WHERE`, `HAVING`).
fn is_true_in(v: &Value, clause: &str) -> Result<bool> {
    match v {
        Value::Null => Ok(false),
        v => v
            .as_bool()
            .map_err(|_| SqlError::Type(format!("argument of {clause} must be type boolean"))),
    }
}

/// WHERE-clause truthiness.
fn is_true(v: &Value) -> Result<bool> {
    is_true_in(v, "WHERE")
}

// ---------------------------------------------------------------------------
// Grouped aggregation
// ---------------------------------------------------------------------------

/// Hashable, normalized form of one grouping-key component. NULLs group
/// together (as in PostgreSQL's GROUP BY), and `-0.0`/`NaN` floats are
/// canonicalized so every row lands in a stable bucket.
#[derive(PartialEq, Eq, Hash)]
enum KeyAtom {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Text(String),
    Timestamp(i64),
    Interval(i64),
}

impl KeyAtom {
    fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Bool(b) => KeyAtom::Bool(*b),
            Value::Int(i) => KeyAtom::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                KeyAtom::Float(if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                })
            }
            Value::Text(s) => KeyAtom::Text(s.clone()),
            Value::Timestamp(t) => KeyAtom::Timestamp(*t),
            Value::Interval(s) => KeyAtom::Interval(*s),
        }
    }
}

/// One hash bucket during grouped evaluation: the resolved GROUP BY
/// expressions, this group's key values, and its source rows.
struct Group<'a> {
    exprs: &'a [Expr],
    key: &'a [Value],
    rows: &'a [Row],
}

/// The PostgreSQL grouping-rule error for a raw column reference that is
/// neither grouped nor inside an aggregate.
fn ungrouped_column(table: Option<&str>, name: &str) -> SqlError {
    let qualified = match table {
        Some(t) => format!("{t}.{name}"),
        None => name.to_string(),
    };
    SqlError::Grouping(format!(
        "column \"{qualified}\" must appear in the GROUP BY clause \
         or be used in an aggregate function"
    ))
}

/// Reject aggregate calls in clauses where PostgreSQL forbids them
/// (`aggregate functions are not allowed in WHERE`, …).
fn reject_aggregate(clause: &str, e: &Expr) -> Result<()> {
    if contains_aggregate(e) {
        return Err(SqlError::Grouping(format!(
            "aggregate functions are not allowed in {clause}"
        )));
    }
    Ok(())
}

/// Are these two expressions the same grouping expression? Structural
/// equality, except bare column references compare by resolved position, so
/// `SELECT t.a … GROUP BY a` matches.
fn same_group_expr(env: &Env<'_>, a: &Expr, b: &Expr) -> bool {
    if a == b {
        return true;
    }
    if let (
        Expr::Column {
            table: ta,
            name: na,
        },
        Expr::Column {
            table: tb,
            name: nb,
        },
    ) = (a, b)
    {
        if let (Ok(ia), Ok(ib)) = (
            env.resolve(ta.as_deref(), na),
            env.resolve(tb.as_deref(), nb),
        ) {
            return ia == ib;
        }
    }
    false
}

/// Rewrite an output/HAVING/ORDER BY expression of a grouped query into a
/// row-free scalar expression: subtrees matching a GROUP BY expression
/// become the group's key value, aggregate calls are computed over the
/// group's rows, and any column reference left over is a grouping error.
/// The lowered expression is then evaluated by the ordinary [`eval`].
fn lower_grouped(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, g: &Group<'_>) -> Result<Expr> {
    if let Some(i) = g.exprs.iter().position(|e| same_group_expr(env, e, expr)) {
        return Ok(Expr::Literal(g.key[i].clone()));
    }
    match expr {
        Expr::Function { name, args } if AGGREGATE_FUNCTIONS.contains(&name.as_str()) => {
            if args.iter().any(contains_aggregate) {
                return Err(SqlError::Grouping(
                    "aggregate function calls cannot be nested".into(),
                ));
            }
            Ok(Expr::Literal(compute_aggregate(
                ctx, name, args, env, g.rows,
            )?))
        }
        Expr::Column { table, name } => Err(ungrouped_column(table.as_deref(), name)),
        Expr::Literal(_) | Expr::Param(_) => Ok(expr.clone()),
        Expr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(lower_grouped(ctx, expr, env, g)?),
        }),
        Expr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(lower_grouped(ctx, left, env, g)?),
            right: Box::new(lower_grouped(ctx, right, env, g)?),
        }),
        Expr::Cast { expr, ty } => Ok(Expr::Cast {
            expr: Box::new(lower_grouped(ctx, expr, env, g)?),
            ty: *ty,
        }),
        Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(lower_grouped(ctx, expr, env, g)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(lower_grouped(ctx, expr, env, g)?),
            list: list
                .iter()
                .map(|e| lower_grouped(ctx, e, env, g))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Function { name, args } => Ok(Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| lower_grouped(ctx, a, env, g))
                .collect::<Result<_>>()?,
        }),
    }
}

/// Lower a grouped expression and evaluate it to a value.
fn eval_grouped(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, g: &Group<'_>) -> Result<Value> {
    let lowered = lower_grouped(ctx, expr, env, g)?;
    eval(ctx, &lowered, env, &[])
}

fn compute_aggregate(
    ctx: &Ctx<'_>,
    name: &str,
    args: &[Expr],
    env: &Env<'_>,
    rows: &[Row],
) -> Result<Value> {
    if name == "count" && args.is_empty() {
        return Ok(Value::Int(rows.len() as i64));
    }
    if args.len() != 1 {
        return Err(SqlError::Type(format!(
            "{name}() takes exactly one argument"
        )));
    }
    let mut values = Vec::with_capacity(rows.len());
    for r in rows {
        let v = eval(ctx, &args[0], env, r)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match name {
        "count" => Ok(Value::Int(values.len() as i64)),
        "sum" | "avg" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc = 0.0;
            for v in &values {
                acc += v.as_f64()?;
            }
            if name == "avg" {
                Ok(Value::Float(acc / values.len() as f64))
            } else {
                Ok(Value::Float(acc))
            }
        }
        "min" | "max" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match compare(&v, &b)? {
                            Some(Ordering::Less) => name == "min",
                            Some(Ordering::Greater) => name == "max",
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        other => Err(SqlError::UnknownFunction(format!("{other}()"))),
    }
}

// ---------------------------------------------------------------------------
// Streaming result cursor
// ---------------------------------------------------------------------------

/// A streaming query result: an iterator of `Result<Row>` plus column
/// names. For plain `SELECT`s (no `ORDER BY`, no `GROUP BY`, no
/// aggregates) the WHERE filter and the projection run lazily per
/// [`Iterator::next`] call, so consumers that stop early never pay for the
/// full result; ordered and grouped/aggregated queries are materialized up
/// front, as both are pipeline breakers.
pub struct Rows<'db> {
    columns: Vec<String>,
    state: RowsState<'db>,
}

enum RowsState<'db> {
    /// Fully materialized output rows.
    Done(std::vec::IntoIter<Row>),
    /// Joined source rows with deferred filter + projection.
    Lazy {
        db: &'db Database,
        params: Vec<Value>,
        bindings: Vec<Binding>,
        where_clause: Option<Expr>,
        projections: Vec<Expr>,
        source: std::vec::IntoIter<Row>,
        remaining: usize,
        failed: bool,
    },
}

impl<'db> Rows<'db> {
    /// Wrap an already-materialized result.
    pub fn from_result(result: QueryResult) -> Rows<'db> {
        Rows {
            columns: result.columns,
            state: RowsState::Done(result.rows.into_iter()),
        }
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Drain the cursor into a materialized [`QueryResult`].
    pub fn into_result(mut self) -> Result<QueryResult> {
        let mut q = QueryResult::new(std::mem::take(&mut self.columns));
        if let RowsState::Done(it) = self.state {
            q.rows = it.collect();
            return Ok(q);
        }
        for r in self {
            q.rows.push(r?);
        }
        Ok(q)
    }
}

impl Iterator for Rows<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        match &mut self.state {
            RowsState::Done(it) => it.next().map(Ok),
            RowsState::Lazy {
                db,
                params,
                bindings,
                where_clause,
                projections,
                source,
                remaining,
                failed,
            } => {
                if *failed || *remaining == 0 {
                    return None;
                }
                let ctx = Ctx {
                    db,
                    params: &params[..],
                };
                let env = Env {
                    bindings: &bindings[..],
                };
                loop {
                    let r = source.next()?;
                    match where_clause {
                        None => {}
                        Some(p) => match eval(&ctx, p, &env, &r).and_then(|v| is_true(&v)) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                *failed = true;
                                return Some(Err(e));
                            }
                        },
                    }
                    *remaining -= 1;
                    let mut out = Vec::with_capacity(projections.len());
                    for e in projections.iter() {
                        match eval(&ctx, e, &env, &r) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                *failed = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    return Some(Ok(out));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

/// Execute a SELECT and materialize the result.
pub fn execute_select(db: &Database, sel: &SelectStmt, params: &[Value]) -> Result<QueryResult> {
    select_rows(db, sel, params)?.into_result()
}

/// Execute a SELECT, returning a (lazily projected, where possible)
/// streaming cursor.
pub fn select_rows<'db>(
    db: &'db Database,
    sel: &SelectStmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    let ctx = Ctx { db, params };

    // 0. Clause-placement validation (PostgreSQL wording).
    if let Some(w) = &sel.where_clause {
        reject_aggregate("WHERE", w)?;
    }
    for item in &sel.from {
        if let FromItem::Function { args, .. } = item {
            for a in args {
                reject_aggregate("FROM", a)?;
            }
        }
    }

    // 1. FROM: build the joined row set, functions joining laterally.
    let mut bindings: Vec<Binding> = Vec::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for item in &sel.from {
        match item {
            FromItem::Table { name, alias } => {
                let table = db.get_table(name)?;
                let (cols, trows) = {
                    let guard = table.read();
                    (
                        guard
                            .schema
                            .columns
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>(),
                        guard.rows.clone(),
                    )
                };
                let mut next = Vec::with_capacity(rows.len() * trows.len().max(1));
                for base in &rows {
                    for tr in &trows {
                        let mut r = base.clone();
                        r.extend(tr.iter().cloned());
                        next.push(r);
                    }
                }
                bindings.push(Binding {
                    qualifier: alias.clone().unwrap_or_else(|| name.clone()),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = next;
            }
            FromItem::Function { name, args, alias } => {
                let env = Env {
                    bindings: &bindings,
                };
                let mut next = Vec::new();
                let mut out_cols: Option<Vec<String>> = None;
                for base in &rows {
                    let vals: Result<Vec<Value>> =
                        args.iter().map(|a| eval(&ctx, a, &env, base)).collect();
                    let result = db.call_table_fn(name, &vals?)?;
                    // A columnless empty result (a STRICT function's NULL
                    // short-circuit) contributes zero rows without pinning
                    // the schema — other input rows may still produce real
                    // output.
                    if result.columns.is_empty() && result.rows.is_empty() {
                        continue;
                    }
                    let mut cols = result.columns.clone();
                    // Single-column SRFs adopt the alias as the column name,
                    // as PostgreSQL does for `generate_series(…) AS id`.
                    if cols.len() == 1 {
                        if let Some(a) = alias {
                            cols = vec![a.to_ascii_lowercase()];
                        }
                    }
                    match &out_cols {
                        None => out_cols = Some(cols),
                        Some(prev) if *prev == cols => {}
                        Some(_) => {
                            return Err(SqlError::Execution(format!(
                                "function {name} returned inconsistent schemas across rows"
                            )))
                        }
                    }
                    for fr in result.rows {
                        let mut r = base.clone();
                        r.extend(fr);
                        next.push(r);
                    }
                }
                let cols = out_cols.unwrap_or_default();
                bindings.push(Binding {
                    qualifier: item.binding_name().to_ascii_lowercase(),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = next;
            }
        }
    }

    // 2. Expand projection wildcards into (expr, output name) pairs.
    let mut projections: Vec<(Expr, String)> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for b in &bindings {
                    for c in &b.columns {
                        projections.push((
                            Expr::Column {
                                table: Some(b.qualifier.clone()),
                                name: c.clone(),
                            },
                            c.clone(),
                        ));
                    }
                }
                if bindings.is_empty() {
                    return Err(SqlError::Parse("SELECT * with no FROM items".into()));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let b = bindings
                    .iter()
                    .find(|b| b.qualifier.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::UnknownTable(q.clone()))?;
                for c in &b.columns {
                    projections.push((
                        Expr::Column {
                            table: Some(b.qualifier.clone()),
                            name: c.clone(),
                        },
                        c.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| derived_name(expr));
                projections.push((expr.clone(), name.to_ascii_lowercase()));
            }
        }
    }
    let columns: Vec<String> = projections.iter().map(|(_, n)| n.clone()).collect();

    // Resolve GROUP BY ordinals (`GROUP BY 1` names the first select item,
    // as in PostgreSQL) and reject aggregates in grouping expressions.
    let mut group_exprs: Vec<Expr> = Vec::with_capacity(sel.group_by.len());
    for e in &sel.group_by {
        let resolved = match e {
            Expr::Literal(Value::Int(n)) => {
                let i = usize::try_from(*n - 1)
                    .ok()
                    .filter(|i| *i < projections.len())
                    .ok_or_else(|| {
                        SqlError::Grouping(format!("GROUP BY position {n} is not in select list"))
                    })?;
                projections[i].0.clone()
            }
            other => other.clone(),
        };
        reject_aggregate("GROUP BY", &resolved)?;
        group_exprs.push(resolved);
    }

    // ORDER BY items may name an output column (alias) or its 1-based
    // ordinal, as in PostgreSQL; both resolve to the projected expression.
    // A bare name matching both an output and an input column means the
    // output column.
    let mut order_by: Vec<(Expr, bool)> = Vec::with_capacity(sel.order_by.len());
    for (e, desc) in &sel.order_by {
        let resolved = match e {
            Expr::Literal(Value::Int(n)) => {
                let i = usize::try_from(*n - 1)
                    .ok()
                    .filter(|i| *i < projections.len())
                    .ok_or_else(|| {
                        SqlError::Grouping(format!("ORDER BY position {n} is not in select list"))
                    })?;
                projections[i].0.clone()
            }
            Expr::Column { table: None, name } => {
                let hits: Vec<&Expr> = projections
                    .iter()
                    .filter(|(_, out)| out.eq_ignore_ascii_case(name))
                    .map(|(pe, _)| pe)
                    .collect();
                match hits.as_slice() {
                    [] => e.clone(),
                    [first, rest @ ..] => {
                        // Several output columns may share the name as long
                        // as they are the same expression (`SELECT *, x …
                        // ORDER BY x`); different expressions are ambiguous.
                        let probe = Env {
                            bindings: &bindings,
                        };
                        if rest.iter().all(|pe| same_group_expr(&probe, first, pe)) {
                            (*first).clone()
                        } else {
                            return Err(SqlError::Grouping(format!(
                                "ORDER BY \"{name}\" is ambiguous"
                            )));
                        }
                    }
                }
            }
            other => other.clone(),
        };
        order_by.push((resolved, *desc));
    }

    let has_aggregate = projections.iter().any(|(e, _)| contains_aggregate(e))
        || sel.having.as_ref().is_some_and(contains_aggregate)
        || order_by.iter().any(|(e, _)| contains_aggregate(e));
    let grouped = has_aggregate || !group_exprs.is_empty() || sel.having.is_some();
    let limit = sel.limit.map(|l| l as usize).unwrap_or(usize::MAX);

    // 3. Plain SELECT: defer WHERE + projection + LIMIT to the cursor.
    if !grouped && order_by.is_empty() {
        return Ok(Rows {
            columns,
            state: RowsState::Lazy {
                db,
                params: params.to_vec(),
                bindings,
                where_clause: sel.where_clause.clone(),
                projections: projections.into_iter().map(|(e, _)| e).collect(),
                source: rows.into_iter(),
                remaining: limit,
                failed: false,
            },
        });
    }

    // 4. WHERE (pipeline breakers ahead — filter eagerly).
    let env = Env {
        bindings: &bindings,
    };
    if let Some(pred) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if is_true(&eval(&ctx, pred, &env, &r)?)? {
                kept.push(r);
            }
        }
        rows = kept;
    }

    // 5. Grouped aggregation: hash rows into per-key buckets (no GROUP BY
    //    = one group over the whole input), filter groups with HAVING, then
    //    project / order / limit per group.
    let mut result = QueryResult::new(columns);
    if grouped {
        let groups: Vec<(Vec<Value>, Vec<Row>)> = if group_exprs.is_empty() {
            vec![(Vec::new(), rows)]
        } else {
            let mut index: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
            for r in rows {
                let mut key = Vec::with_capacity(group_exprs.len());
                for e in &group_exprs {
                    key.push(eval(&ctx, e, &env, &r)?);
                }
                match index.entry(key.iter().map(KeyAtom::from_value).collect()) {
                    Entry::Occupied(o) => groups[*o.get()].1.push(r),
                    Entry::Vacant(v) => {
                        v.insert(groups.len());
                        groups.push((key, vec![r]));
                    }
                }
            }
            groups
        };

        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(groups.len());
        for (key, grows) in &groups {
            let g = Group {
                exprs: &group_exprs,
                key,
                rows: grows,
            };
            if let Some(h) = &sel.having {
                if !is_true_in(&eval_grouped(&ctx, h, &env, &g)?, "HAVING")? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(projections.len());
            for (e, _) in &projections {
                out.push(eval_grouped(&ctx, e, &env, &g)?);
            }
            let mut sort_key = Vec::with_capacity(order_by.len());
            for (e, _) in &order_by {
                sort_key.push(eval_grouped(&ctx, e, &env, &g)?);
            }
            keyed.push((sort_key, out));
        }
        sort_keyed(&mut keyed, &order_by);
        result.rows = keyed.into_iter().take(limit).map(|(_, r)| r).collect();
        return Ok(Rows::from_result(result));
    }

    // 6. ORDER BY on source rows.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for r in rows {
        let mut keys = Vec::with_capacity(order_by.len());
        for (e, _) in &order_by {
            keys.push(eval(&ctx, e, &env, &r)?);
        }
        keyed.push((keys, r));
    }
    sort_keyed(&mut keyed, &order_by);

    // 7. LIMIT + projection.
    for (_, r) in keyed.into_iter().take(limit) {
        let mut out = Vec::with_capacity(projections.len());
        for (e, _) in &projections {
            out.push(eval(&ctx, e, &env, &r)?);
        }
        result.rows.push(out);
    }
    Ok(Rows::from_result(result))
}

/// Stable multi-key sort shared by the grouped and plain ORDER BY paths.
fn sort_keyed(keyed: &mut [(Vec<Value>, Row)], order_by: &[(Expr, bool)]) {
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in order_by.iter().enumerate() {
            let o = order_cmp(&ka[i], &kb[i]);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
}

/// Output column name for an unaliased projection.
fn derived_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        Expr::Cast { expr, .. } => derived_name(expr),
        _ => "?column?".into(),
    }
}

// ---------------------------------------------------------------------------
// DML / DDL execution
// ---------------------------------------------------------------------------

/// Execute any statement with bind parameters, materializing the result.
pub fn execute_stmt(db: &Database, stmt: &Stmt, params: &[Value]) -> Result<QueryResult> {
    match stmt {
        Stmt::Select(sel) => execute_select(db, sel, params),
        other => execute_stmt_rows(db, other, params)?.into_result(),
    }
}

/// Execute any statement with bind parameters; `SELECT`s stream through
/// [`Rows`], everything else returns its (tiny) materialized status result.
pub fn execute_stmt_rows<'db>(
    db: &'db Database,
    stmt: &Stmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    let ctx = Ctx { db, params };
    match stmt {
        Stmt::Select(sel) => select_rows(db, sel, params),
        Stmt::Insert {
            table,
            columns,
            source,
        } => {
            let handle = db.get_table(table)?;
            let schema = handle.read().schema.clone();
            let input_rows: Vec<Row> = match source {
                InsertSource::Values(rows) => {
                    let env = Env { bindings: &[] };
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        for e in row {
                            reject_aggregate("VALUES", e)?;
                        }
                        let vals: Result<Row> =
                            row.iter().map(|e| eval(&ctx, e, &env, &[])).collect();
                        out.push(vals?);
                    }
                    out
                }
                InsertSource::Select(sel) => execute_select(db, sel, params)?.rows,
            };
            let mapped: Vec<Row> = match columns {
                None => input_rows,
                Some(cols) => {
                    let mut idxs = Vec::with_capacity(cols.len());
                    for c in cols {
                        idxs.push(schema.index_of(c).ok_or_else(|| {
                            SqlError::UnknownColumn(format!("{c} in INSERT column list"))
                        })?);
                    }
                    input_rows
                        .into_iter()
                        .map(|r| {
                            if r.len() != idxs.len() {
                                return Err(SqlError::Constraint(format!(
                                    "INSERT row has {} values for {} columns",
                                    r.len(),
                                    idxs.len()
                                )));
                            }
                            let mut full = vec![Value::Null; schema.len()];
                            for (v, &i) in r.into_iter().zip(&idxs) {
                                full[i] = v;
                            }
                            Ok(full)
                        })
                        .collect::<Result<_>>()?
                }
            };
            let n = mapped.len();
            let mut guard = handle.write();
            for r in mapped {
                guard.insert(r)?;
            }
            let mut q = QueryResult::new(vec!["count".into()]);
            q.rows.push(vec![Value::Int(n as i64)]);
            Ok(Rows::from_result(q))
        }
        Stmt::Update {
            table,
            sets,
            where_clause,
        } => {
            for (_, e) in sets {
                reject_aggregate("UPDATE", e)?;
            }
            if let Some(w) = where_clause {
                reject_aggregate("WHERE", w)?;
            }
            let handle = db.get_table(table)?;
            // Snapshot for evaluation, then apply — keeps evaluation free of
            // the write lock so UDFs inside SET expressions may re-enter.
            let (schema, snapshot) = {
                let g = handle.read();
                (g.schema.clone(), g.rows.clone())
            };
            let binding = [Binding {
                qualifier: table.clone(),
                columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
                offset: 0,
            }];
            let env = Env { bindings: &binding };
            let mut set_idx = Vec::with_capacity(sets.len());
            for (c, _) in sets {
                set_idx.push(
                    schema
                        .index_of(c)
                        .ok_or_else(|| SqlError::UnknownColumn(format!("{c} in UPDATE SET")))?,
                );
            }
            let mut new_rows = Vec::with_capacity(snapshot.len());
            let mut n = 0i64;
            for r in snapshot {
                let hit = match where_clause {
                    None => true,
                    Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
                };
                if hit {
                    let mut updated = r.clone();
                    for ((_, e), &i) in sets.iter().zip(&set_idx) {
                        let v = eval(&ctx, e, &env, &r)?;
                        updated[i] = v.coerce_to(schema.columns[i].dtype)?;
                    }
                    new_rows.push(updated);
                    n += 1;
                } else {
                    new_rows.push(r);
                }
            }
            handle.write().rows = new_rows;
            let mut q = QueryResult::new(vec!["count".into()]);
            q.rows.push(vec![Value::Int(n)]);
            Ok(Rows::from_result(q))
        }
        Stmt::Delete {
            table,
            where_clause,
        } => {
            if let Some(w) = where_clause {
                reject_aggregate("WHERE", w)?;
            }
            let handle = db.get_table(table)?;
            let (schema, snapshot) = {
                let g = handle.read();
                (g.schema.clone(), g.rows.clone())
            };
            let binding = [Binding {
                qualifier: table.clone(),
                columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
                offset: 0,
            }];
            let env = Env { bindings: &binding };
            let mut kept = Vec::with_capacity(snapshot.len());
            let mut n = 0i64;
            for r in snapshot {
                let hit = match where_clause {
                    None => true,
                    Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
                };
                if hit {
                    n += 1;
                } else {
                    kept.push(r);
                }
            }
            handle.write().rows = kept;
            let mut q = QueryResult::new(vec!["count".into()]);
            q.rows.push(vec![Value::Int(n)]);
            Ok(Rows::from_result(q))
        }
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let cols = columns
                .iter()
                .map(|(n, t)| Column::new(n, *t))
                .collect::<Vec<_>>();
            let schema = Schema::new(cols)?;
            match db.create_table(name, Table::new(schema)) {
                Ok(()) => {}
                Err(SqlError::Constraint(_)) if *if_not_exists => {}
                Err(e) => return Err(e),
            }
            Ok(Rows::from_result(QueryResult::new(vec![])))
        }
        Stmt::DropTable { name, if_exists } => {
            match db.drop_table(name) {
                Ok(()) => {}
                Err(SqlError::UnknownTable(_)) if *if_exists => {}
                Err(e) => return Err(e),
            }
            Ok(Rows::from_result(QueryResult::new(vec![])))
        }
    }
}
