//! Query executor — the execute half of the plan → execute pipeline.
//!
//! Every statement runs from an immutable physical plan (see the
//! `plan` module): scans snapshot their input, the filter / group /
//! having / project / sort operators evaluate the plan's slot-resolved
//! expressions in place, and plain `SELECT`s stream their filter and
//! projection through the [`Rows`] cursor — the cursor holds the shared
//! `Arc<PhysicalPlan>`, so repeated executions of a prepared statement
//! clone no expressions at all.
//!
//! Grouped aggregation is a hash operator over *row indices*: each input
//! row's `GROUP BY` key is evaluated and hashed (NULLs group together,
//! `-0.0`/`NaN` are canonicalized) and the row's index is appended to its
//! bucket — rows are never cloned into groups. Each distinct aggregate
//! call of the statement (deduplicated at plan time by expression
//! identity) is then folded exactly once per group, no matter how many
//! times it appears across the select list, `HAVING` and `ORDER BY`; the
//! lowered output expressions just read the memoized values.
//!
//! `INSERT … SELECT` consumes its source through the streaming cursor and
//! inserts row by row, so the intermediate result is never materialized.

use std::cmp::Ordering;
use std::collections::{hash_map::Entry, HashMap, HashSet};
use std::sync::Arc;

use crate::ast::{Expr, FromItem, InsertSource, SelectStmt, Stmt, UnOp, AGGREGATE_FUNCTIONS};
use crate::db::Database;
use crate::decode::NamedRows;
use crate::error::{Result, SqlError};
use crate::plan::{
    AggCall, AggOp, Binding, DmlPlan, Env, GroupPlan, InsertPlan, PhysicalPlan, PlanFn, SelectOps,
    ZeroScanKind,
};
use crate::table::{Column, QueryResult, Row, Schema, Table};
use crate::value::Value;

/// The values of one group during grouped evaluation: its key and its
/// memoized aggregate results, read by `GroupKey`/`Agg` expressions.
#[derive(Clone, Copy)]
struct GroupVals<'a> {
    key: &'a [Value],
    aggs: &'a [Value],
}

/// Everything expression evaluation needs besides the row: the database
/// (for UDF calls), the statement's bind parameters, and — inside the
/// grouping operator — the current group's key and aggregate values.
struct Ctx<'a> {
    db: &'a Database,
    params: &'a [Value],
    /// The plan's resolved scalar-function table (`Expr::ScalarCall`
    /// indexes); empty in contexts that evaluate raw AST expressions.
    fns: &'a [PlanFn],
    group: Option<GroupVals<'a>>,
}

/// No resolved functions — raw-AST evaluation contexts.
const NO_FNS: &[PlanFn] = &[];

/// The empty name environment used once expressions are slot-resolved.
const NO_BINDINGS: &[Binding] = &[];

// ---------------------------------------------------------------------------
// Value operations
// ---------------------------------------------------------------------------

/// Three-valued comparison; `None` when either side is NULL.
pub fn compare(a: &Value, b: &Value) -> Result<Option<Ordering>> {
    use Value::*;
    Ok(Some(match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Int(x), Float(y)) => (*x as f64)
            .partial_cmp(y)
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Float(x), Int(y)) => x
            .partial_cmp(&(*y as f64))
            .ok_or_else(|| SqlError::Execution("NaN comparison".into()))?,
        (Text(x), Text(y)) => x.cmp(y),
        (Bool(x), Bool(y)) => x.cmp(y),
        (Timestamp(x), Timestamp(y)) => x.cmp(y),
        (Timestamp(x), Text(y)) => x.cmp(&crate::value::parse_timestamp(y)?),
        (Text(x), Timestamp(y)) => crate::value::parse_timestamp(x)?.cmp(y),
        (Interval(x), Interval(y)) => x.cmp(y),
        (x, y) => {
            return Err(SqlError::Type(format!(
                "cannot compare {} with {}",
                x.data_type().name(),
                y.data_type().name()
            )))
        }
    }))
}

/// Total ordering used by ORDER BY: NULLs sort last, mixed numerics compare
/// numerically.
pub fn order_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => compare(a, b).ok().flatten().unwrap_or(Ordering::Equal),
    }
}

fn arith(op: BinOpKind, a: &Value, b: &Value) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    Ok(match (op, a, b) {
        (BinOpKind::Add, Int(x), Int(y)) => Int(x + y),
        (BinOpKind::Sub, Int(x), Int(y)) => Int(x - y),
        (BinOpKind::Mul, Int(x), Int(y)) => Int(x * y),
        (BinOpKind::Div, Int(x), Int(y)) => {
            if *y == 0 {
                return Err(SqlError::Execution("division by zero".into()));
            }
            Int(x / y)
        }
        // timestamp/interval arithmetic
        (BinOpKind::Add, Timestamp(t), Interval(i))
        | (BinOpKind::Add, Interval(i), Timestamp(t)) => Timestamp(t + i),
        (BinOpKind::Sub, Timestamp(t), Interval(i)) => Timestamp(t - i),
        (BinOpKind::Sub, Timestamp(x), Timestamp(y)) => Interval(x - y),
        (BinOpKind::Add, Interval(x), Interval(y)) => Interval(x + y),
        (BinOpKind::Sub, Interval(x), Interval(y)) => Interval(x - y),
        (BinOpKind::Mul, Interval(x), Int(y)) | (BinOpKind::Mul, Int(y), Interval(x)) => {
            Interval(x * y)
        }
        // float-promoting arithmetic
        (op, x, y) => {
            let xf = x.as_f64()?;
            let yf = y.as_f64()?;
            match op {
                BinOpKind::Add => Float(xf + yf),
                BinOpKind::Sub => Float(xf - yf),
                BinOpKind::Mul => Float(xf * yf),
                BinOpKind::Div => {
                    if yf == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    Float(xf / yf)
                }
            }
        }
    })
}

/// Arithmetic subset of [`crate::ast::BinOp`] (keeps `arith` total).
#[derive(Clone, Copy)]
enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
}

fn logical(and: bool, a: &Value, b: &Value) -> Result<Value> {
    let lhs = match a {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let rhs = match b {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    // Kleene three-valued logic.
    Ok(if and {
        match (lhs, rhs) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        }
    } else {
        match (lhs, rhs) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        }
    })
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, row: &[Value]) -> Result<Value> {
    use crate::ast::BinOp;
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => ctx
            .params
            .get(*i - 1)
            .cloned()
            .ok_or_else(|| SqlError::Execution(format!("there is no parameter ${i}"))),
        Expr::Slot(i) => Ok(row[*i].clone()),
        Expr::GroupKey(i) => match &ctx.group {
            Some(g) => Ok(g.key[*i].clone()),
            None => Err(SqlError::Execution(
                "group key referenced outside the grouping operator".into(),
            )),
        },
        Expr::Agg(k) => match &ctx.group {
            Some(g) => Ok(g.aggs[*k].clone()),
            None => Err(SqlError::Execution(
                "aggregate referenced outside the grouping operator".into(),
            )),
        },
        Expr::Column { table, name } => {
            let i = env.resolve(table.as_deref(), name)?;
            Ok(row[i].clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, env, row)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Interval(i) => Ok(Value::Interval(-i)),
                    other => Err(SqlError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    v => Ok(Value::Bool(!v.as_bool()?)),
                },
            }
        }
        Expr::Binary { op, left, right } => {
            // AND/OR short-circuit as in PostgreSQL: a false (resp. true)
            // left side decides without evaluating the right side.
            // (Kleene logic: NULL on the left still needs the right side.)
            if matches!(op, BinOp::And | BinOp::Or) {
                let a = eval(ctx, left, env, row)?;
                let and = matches!(op, BinOp::And);
                if let Ok(decided) = a.as_bool() {
                    if decided != and {
                        return Ok(Value::Bool(decided));
                    }
                }
                let b = eval(ctx, right, env, row)?;
                return logical(and, &a, &b);
            }
            let a = eval(ctx, left, env, row)?;
            let b = eval(ctx, right, env, row)?;
            match op {
                BinOp::Add => arith(BinOpKind::Add, &a, &b),
                BinOp::Sub => arith(BinOpKind::Sub, &a, &b),
                BinOp::Mul => arith(BinOpKind::Mul, &a, &b),
                BinOp::Div => arith(BinOpKind::Div, &a, &b),
                BinOp::And | BinOp::Or => {
                    unreachable!("AND/OR take the short-circuit path above")
                }
                BinOp::Concat => {
                    if a.is_null() || b.is_null() {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Text(format!("{a}{b}")))
                    }
                }
                cmp => {
                    let ord = compare(&a, &b)?;
                    Ok(match ord {
                        None => Value::Null,
                        Some(o) => Value::Bool(match cmp {
                            BinOp::Eq => o == Ordering::Equal,
                            BinOp::Ne => o != Ordering::Equal,
                            BinOp::Lt => o == Ordering::Less,
                            BinOp::Le => o != Ordering::Greater,
                            BinOp::Gt => o == Ordering::Greater,
                            BinOp::Ge => o != Ordering::Less,
                            _ => unreachable!(),
                        }),
                    })
                }
            }
        }
        Expr::Cast { expr, ty } => eval(ctx, expr, env, row)?.cast_to(*ty),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let probe = eval(ctx, expr, env, row)?;
            if probe.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(ctx, item, env, row)?;
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                if compare(&probe, &v)? == Some(Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, env, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Function { name, args } => {
            if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                return Err(SqlError::Execution(format!(
                    "aggregate function {name}() is not allowed here"
                )));
            }
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval(ctx, a, env, row)).collect();
            ctx.db.call_scalar(name, &vals?)
        }
        Expr::ScalarCall { f, args } => {
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval(ctx, a, env, row)).collect();
            let vals = vals?;
            match &ctx.fns[*f] {
                PlanFn::Udf(f) => f(ctx.db, &vals),
                PlanFn::Intrinsic {
                    op,
                    counter,
                    fallback,
                } => match crate::functions::eval_intrinsic(*op, &vals) {
                    Some(r) => {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        r
                    }
                    // A shape the native path does not handle: the
                    // registered UDF owns the error wording.
                    None => fallback(ctx.db, &vals),
                },
            }
        }
    }
}

/// Predicate-clause truthiness: NULL is not true. `clause` names the
/// clause in the type error (`WHERE`, `HAVING`).
fn is_true_in(v: &Value, clause: &str) -> Result<bool> {
    match v {
        Value::Null => Ok(false),
        v => v
            .as_bool()
            .map_err(|_| SqlError::Type(format!("argument of {clause} must be type boolean"))),
    }
}

/// WHERE-clause truthiness.
fn is_true(v: &Value) -> Result<bool> {
    is_true_in(v, "WHERE")
}

// ---------------------------------------------------------------------------
// Grouping keys and aggregation
// ---------------------------------------------------------------------------

/// Hashable, normalized form of one grouping-key (or DISTINCT row)
/// component. NULLs group together (as in PostgreSQL's GROUP BY), and
/// `-0.0`/`NaN` floats are canonicalized so every row lands in a stable
/// bucket.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum KeyAtom {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Text(String),
    Timestamp(i64),
    Interval(i64),
}

impl KeyAtom {
    pub(crate) fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Bool(b) => KeyAtom::Bool(*b),
            Value::Int(i) => KeyAtom::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                KeyAtom::Float(if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                })
            }
            Value::Text(s) => KeyAtom::Text(s.clone()),
            Value::Timestamp(t) => KeyAtom::Timestamp(*t),
            Value::Interval(s) => KeyAtom::Interval(*s),
        }
    }

    fn row_key(row: &[Value]) -> Vec<KeyAtom> {
        row.iter().map(KeyAtom::from_value).collect()
    }
}

/// Streaming accumulator for one aggregate call of one group.
enum AggAcc {
    Count(i64),
    Sum { sum: f64, n: i64 },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(op: AggOp) -> AggAcc {
        match op {
            AggOp::CountStar | AggOp::Count => AggAcc::Count(0),
            AggOp::Sum => AggAcc::Sum { sum: 0.0, n: 0 },
            AggOp::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
            AggOp::Min => AggAcc::Min(None),
            AggOp::Max => AggAcc::Max(None),
        }
    }

    /// Fold one source row into the accumulator (NULL argument values are
    /// skipped, as in SQL aggregates).
    fn update(
        &mut self,
        ctx: &Ctx<'_>,
        call: &AggCall,
        env: &Env<'_>,
        row: &[Value],
    ) -> Result<()> {
        if call.op == AggOp::CountStar {
            let AggAcc::Count(n) = self else {
                unreachable!()
            };
            *n += 1;
            return Ok(());
        }
        let v = eval(ctx, &call.args[0], env, row)?;
        if v.is_null() {
            return Ok(());
        }
        let is_min = matches!(self, AggAcc::Min(_));
        match self {
            AggAcc::Count(n) => *n += 1,
            AggAcc::Sum { sum, n } | AggAcc::Avg { sum, n } => {
                *sum += v.as_f64()?;
                *n += 1;
            }
            AggAcc::Min(best) | AggAcc::Max(best) => {
                *best = Some(match best.take() {
                    None => v,
                    Some(b) => {
                        let keep_new = match compare(&v, &b)? {
                            Some(Ordering::Less) => is_min,
                            Some(Ordering::Greater) => !is_min,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(n),
            AggAcc::Sum { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum)
                }
            }
            AggAcc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggAcc::Min(best) | AggAcc::Max(best) => best.unwrap_or(Value::Null),
        }
    }
}

/// The grouping operator's accumulation pass, in one sweep over borrowed
/// source rows: apply the WHERE filter, hash each surviving row's key
/// into its bucket (rows are never cloned — only key values are kept),
/// and fold every distinct aggregate call incrementally. Returns each
/// group's `(key values, memoized aggregate values)`. No GROUP BY = one
/// group over the whole input, even when it is empty (the ungrouped
/// aggregate's one-row result).
fn grouped_groups(
    ctx: &Ctx<'_>,
    where_clause: Option<&Expr>,
    gp: &GroupPlan,
    rows: &[Row],
) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let mut index: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<AggAcc>)> = Vec::new();
    let accs_new = || {
        gp.aggs
            .iter()
            .map(|c| AggAcc::new(c.op))
            .collect::<Vec<_>>()
    };
    if gp.keys.is_empty() {
        groups.push((Vec::new(), accs_new()));
    }
    let mut key: Vec<Value> = Vec::with_capacity(gp.keys.len());
    for r in rows {
        if let Some(p) = where_clause {
            if !is_true(&eval(ctx, p, &env, r)?)? {
                continue;
            }
        }
        let gi = if gp.keys.is_empty() {
            0
        } else {
            key.clear();
            for e in &gp.keys {
                key.push(eval(ctx, e, &env, r)?);
            }
            match index.entry(KeyAtom::row_key(&key)) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push((key.clone(), accs_new()));
                    groups.len() - 1
                }
            }
        };
        let (_, accs) = &mut groups[gi];
        for (acc, call) in accs.iter_mut().zip(&gp.aggs) {
            acc.update(ctx, call, &env, r)?;
        }
    }
    // One memoized evaluation per (group, distinct call) — the
    // observability counter the memoization tests pin down.
    ctx.db.note_agg_evals((groups.len() * gp.aggs.len()) as u64);
    Ok(groups
        .into_iter()
        .map(|(key, accs)| (key, accs.into_iter().map(AggAcc::finish).collect()))
        .collect())
}

/// The grouping operator's emission pass (runs without any table guard):
/// per group, evaluate the lowered HAVING / projection / ORDER BY
/// expressions against the memoized key and aggregate values.
fn emit_groups(
    db: &Database,
    params: &[Value],
    ops: &SelectOps,
    groups: Vec<(Vec<Value>, Vec<Value>)>,
) -> Result<Vec<(Vec<Value>, Row)>> {
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let mut keyed = Vec::with_capacity(groups.len());
    let Some(gp) = &ops.group else {
        unreachable!("emit_groups runs under a group plan");
    };
    for (key, aggs) in &groups {
        let gctx = Ctx {
            db,
            params,
            fns: &ops.fns,
            group: Some(GroupVals { key, aggs }),
        };
        if let Some(h) = &gp.having {
            if !is_true_in(&eval(&gctx, h, &env, &[])?, "HAVING")? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(ops.projections.len());
        for e in &ops.projections {
            out.push(eval(&gctx, e, &env, &[])?);
        }
        let mut sort_key = Vec::with_capacity(ops.order_by.len());
        for (e, _) in &ops.order_by {
            sort_key.push(eval(&gctx, e, &env, &[])?);
        }
        keyed.push((sort_key, out));
    }
    Ok(keyed)
}

/// Shared tail of the grouped paths: DISTINCT deduplication, ordering
/// and LIMIT over the projected group rows.
fn grouped_tail(mut keyed: Vec<(Vec<Value>, Row)>, ops: &SelectOps) -> Vec<Row> {
    if ops.distinct {
        let mut seen = HashSet::new();
        keyed.retain(|(_, r)| seen.insert(KeyAtom::row_key(r)));
        sort_by_output(&mut keyed, &ops.distinct_order);
    } else {
        sort_keyed(&mut keyed, &ops.order_by);
    }
    keyed.into_iter().take(ops.limit).map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// Streaming result cursor
// ---------------------------------------------------------------------------

/// A streaming query result: an iterator of `Result<Row>` plus column
/// names. For plain `SELECT`s (no `ORDER BY`, no `GROUP BY`, no
/// aggregates) the WHERE filter, the projection and DISTINCT
/// deduplication run lazily per [`Iterator::next`] call against the
/// shared physical plan, so consumers that stop early never pay for the
/// full result and repeated executions clone no expressions. When the
/// plan additionally classified every scan-side expression as
/// re-entrancy-free, the cursor streams **zero-copy**: it owns the
/// scanned table's read guard (released when drained or dropped) and
/// never snapshots the table — see [`crate::Statement::query_rows`] for
/// the locking rule this implies. Ordered and grouped/aggregated queries
/// are materialized up front, as both are pipeline breakers.
pub struct Rows<'db> {
    columns: Vec<String>,
    state: RowsState<'db>,
}

/// Where a lazy cursor's operator pipeline lives.
enum OpsSource {
    /// The shared plan of a prepared statement — zero per-execution
    /// expression clones.
    Plan(Arc<PhysicalPlan>),
    /// A pipeline resolved at execution time (dynamic scans).
    Owned(Box<SelectOps>),
}

impl OpsSource {
    fn ops(&self) -> &SelectOps {
        match self {
            OpsSource::Plan(p) => match &**p {
                PhysicalPlan::StaticSelect(sp) => &sp.ops,
                _ => unreachable!("lazy cursors only reference SELECT plans"),
            },
            OpsSource::Owned(o) => o,
        }
    }
}

struct LazyScan<'db> {
    db: &'db Database,
    params: Vec<Value>,
    ops: OpsSource,
    source: std::vec::IntoIter<Row>,
    /// DISTINCT: projected rows already emitted.
    seen: Option<HashSet<Vec<KeyAtom>>>,
    remaining: usize,
    failed: bool,
}

/// A zero-copy streaming scan: the cursor owns the table's read guard
/// and evaluates filter + projection per `next()` against the borrowed
/// rows — no snapshot, no intermediate output buffer. The guard is held
/// until the cursor is drained or dropped, which is why only plans whose
/// scan-side expressions cannot re-enter the database take this path
/// (and why a consumer must not write to the scanned table before
/// finishing with the cursor).
struct GuardedScan<'db> {
    db: &'db Database,
    params: Vec<Value>,
    /// The shared plan — holds the zero-copy expressions and fns table.
    plan: Arc<PhysicalPlan>,
    /// Registration key in the thread's held-guard set (lets same-thread
    /// writers fail loudly instead of deadlocking; see
    /// [`Database::check_writable`]).
    guard_key: usize,
    guard: parking_lot::ArcRwLockReadGuard<Table>,
    /// Projection as plain slot indices when every output is a bare
    /// column (skips expression dispatch per value).
    slot_projs: Option<Vec<usize>>,
    /// Next source row.
    idx: usize,
    /// DISTINCT: projected rows already emitted.
    seen: Option<HashSet<Vec<KeyAtom>>>,
    remaining: usize,
    failed: bool,
}

impl Drop for GuardedScan<'_> {
    fn drop(&mut self) {
        // `rows_scanned` counts rows actually examined: an early-stopping
        // consumer (LIMIT, partial drain) is charged only for what the
        // cursor read. Flushed once, when the cursor finishes.
        self.db.note_scan_rows(self.idx as u64);
        Database::release_cursor_guard(self.guard_key);
    }
}

enum RowsState<'db> {
    /// Fully materialized output rows.
    Done(std::vec::IntoIter<Row>),
    /// An externally produced row stream (e.g. `fmu_simulate` output
    /// assembly) surfaced through the same cursor type.
    Streamed(Box<dyn Iterator<Item = Result<Row>> + 'db>),
    /// Scan source with deferred filter + projection (+ DISTINCT).
    Lazy(Box<LazyScan<'db>>),
    /// Zero-copy scan streaming under the table read guard.
    Guarded(Box<GuardedScan<'db>>),
}

impl<'db> Rows<'db> {
    /// Wrap an already-materialized result.
    pub fn from_result(result: QueryResult) -> Rows<'db> {
        Rows {
            columns: result.columns,
            state: RowsState::Done(result.rows.into_iter()),
        }
    }

    /// Wrap an external row-producing iterator as a streaming cursor.
    pub fn streamed<I>(columns: Vec<String>, iter: I) -> Rows<'db>
    where
        I: Iterator<Item = Result<Row>> + 'db,
    {
        Rows {
            columns,
            state: RowsState::Streamed(Box::new(iter)),
        }
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Convert into an iterator of by-name-addressable rows (see
    /// [`crate::decode::NamedRow`]).
    pub fn into_named(self) -> NamedRows<'db> {
        NamedRows::new(self)
    }

    /// Drain the cursor into a materialized [`QueryResult`].
    pub fn into_result(mut self) -> Result<QueryResult> {
        let mut q = QueryResult::new(std::mem::take(&mut self.columns));
        if let RowsState::Done(it) = self.state {
            q.rows = it.collect();
            return Ok(q);
        }
        for r in self {
            q.rows.push(r?);
        }
        Ok(q)
    }
}

impl Iterator for Rows<'_> {
    type Item = Result<Row>;

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            // Materialized output: the length is exact, so collecting
            // consumers (`query_as`, `into_result`) preallocate.
            RowsState::Done(it) => it.size_hint(),
            RowsState::Streamed(_) => (0, None),
            RowsState::Lazy(scan) => {
                if scan.failed {
                    (0, Some(0))
                } else {
                    (0, Some(scan.source.len().min(scan.remaining)))
                }
            }
            RowsState::Guarded(scan) => {
                if scan.failed {
                    (0, Some(0))
                } else {
                    let left = scan.guard.rows.len().saturating_sub(scan.idx);
                    (0, Some(left.min(scan.remaining)))
                }
            }
        }
    }

    fn count(self) -> usize {
        match self.state {
            // O(1) for materialized output — no per-row dispatch.
            RowsState::Done(it) => it.count(),
            state => Rows {
                columns: self.columns,
                state,
            }
            .fold(0, |n, _| n + 1),
        }
    }

    fn fold<B, G>(self, init: B, mut g: G) -> B
    where
        G: FnMut(B, Self::Item) -> B,
    {
        // Internal iteration over the materialized and streamed states
        // skips the per-row state dispatch of `next()` — `for_each`,
        // `sum`, `count` and friends all drain through here.
        match self.state {
            RowsState::Done(it) => it.fold(init, |acc, r| g(acc, Ok(r))),
            RowsState::Streamed(it) => it.fold(init, g),
            state => {
                let mut rows = Rows {
                    columns: self.columns,
                    state,
                };
                let mut acc = init;
                for item in &mut rows {
                    acc = g(acc, item);
                }
                acc
            }
        }
    }

    fn next(&mut self) -> Option<Result<Row>> {
        match &mut self.state {
            RowsState::Done(it) => it.next().map(Ok),
            RowsState::Streamed(it) => it.next(),
            RowsState::Lazy(scan) => {
                if scan.failed || scan.remaining == 0 {
                    return None;
                }
                let ops = scan.ops.ops();
                let ctx = Ctx {
                    db: scan.db,
                    params: &scan.params,
                    fns: &ops.fns,
                    group: None,
                };
                let env = Env {
                    bindings: NO_BINDINGS,
                };
                loop {
                    let r = scan.source.next()?;
                    match &ops.where_clause {
                        None => {}
                        Some(p) => match eval(&ctx, p, &env, &r).and_then(|v| is_true(&v)) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                scan.failed = true;
                                return Some(Err(e));
                            }
                        },
                    }
                    let mut out = Vec::with_capacity(ops.projections.len());
                    for e in &ops.projections {
                        match eval(&ctx, e, &env, &r) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                scan.failed = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    if let Some(seen) = &mut scan.seen {
                        if !seen.insert(KeyAtom::row_key(&out)) {
                            continue;
                        }
                    }
                    scan.remaining -= 1;
                    return Some(Ok(out));
                }
            }
            RowsState::Guarded(scan) => {
                // Destructure for disjoint field borrows: the plan (and
                // the guard's rows) are read while the cursor position,
                // DISTINCT set and limit mutate.
                let GuardedScan {
                    db,
                    params,
                    plan,
                    guard_key: _,
                    guard,
                    slot_projs,
                    idx,
                    seen,
                    remaining,
                    failed,
                } = &mut **scan;
                if *failed || *remaining == 0 {
                    return None;
                }
                let PhysicalPlan::StaticSelect(sp) = &**plan else {
                    unreachable!("guarded scans hold a static SELECT plan");
                };
                let Some(z) = &sp.zero else {
                    unreachable!("guarded scans hold a zero-copy plan");
                };
                let ZeroScanKind::Select { projections, .. } = &z.kind else {
                    unreachable!("guarded scans are plain SELECTs");
                };
                let ctx = Ctx {
                    db,
                    params,
                    fns: &sp.ops.fns,
                    group: None,
                };
                let env = Env {
                    bindings: NO_BINDINGS,
                };
                loop {
                    let i = *idx;
                    if i >= guard.rows.len() {
                        return None;
                    }
                    *idx += 1;
                    let r = &guard.rows[i];
                    if let Some(p) = &z.where_clause {
                        match eval(&ctx, p, &env, r).and_then(|v| is_true(&v)) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                *failed = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    let projected: Result<Row> = match slot_projs {
                        Some(slots) => Ok(slots.iter().map(|&s| r[s].clone()).collect()),
                        None => projections.iter().map(|e| eval(&ctx, e, &env, r)).collect(),
                    };
                    let out = match projected {
                        Ok(out) => out,
                        Err(e) => {
                            *failed = true;
                            return Some(Err(e));
                        }
                    };
                    if let Some(seen) = seen.as_mut() {
                        if !seen.insert(KeyAtom::row_key(&out)) {
                            continue;
                        }
                    }
                    *remaining -= 1;
                    return Some(Ok(out));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

/// A scanned table's schema no longer matches the cached plan — a DDL
/// race between the plan's epoch check and the scan. The caller's next
/// execution recompiles against the new epoch.
fn stale_plan(name: &str) -> SqlError {
    SqlError::Execution(format!(
        "cached plan is stale: relation \"{name}\" changed during execution"
    ))
}

/// Does a table's live schema still match the column layout a plan was
/// compiled against? Checked under the same guard the rows come from.
fn schema_matches(schema: &Schema, planned: &[String]) -> bool {
    schema.len() == planned.len()
        && schema
            .columns
            .iter()
            .zip(planned)
            .all(|(c, p)| c.name == *p)
}

/// Cross-join a snapshot of table rows onto the joined set so far. The
/// initial state (one empty row) short-circuits: `[[]] × T = T`.
fn cross_join(rows: Vec<Row>, trows: Vec<Row>) -> Vec<Row> {
    if rows.len() == 1 && rows[0].is_empty() {
        return trows;
    }
    let mut next = Vec::with_capacity(rows.len() * trows.len().max(1));
    for base in &rows {
        for tr in &trows {
            let mut r = base.clone();
            r.extend(tr.iter().cloned());
            next.push(r);
        }
    }
    next
}

/// Scan the base tables of a static plan into the joined row set,
/// re-checking each table's schema against the plan under the same guard
/// the rows are snapshotted from (so `Slot` indices stay in bounds and
/// keep pointing at the planned columns). Only the columns the statement
/// actually reads are cloned — the snapshot is column-pruned.
fn scan_tables(
    db: &Database,
    tables: &[String],
    schemas: &[Vec<String>],
    used_cols: &[Vec<usize>],
) -> Result<Vec<Row>> {
    let mut rows: Vec<Row> = vec![Vec::new()];
    for ((name, planned), used) in tables.iter().zip(schemas).zip(used_cols) {
        let handle = db.get_table(name)?;
        let trows = {
            let guard = handle.read();
            if !schema_matches(&guard.schema, planned) {
                return Err(stale_plan(name));
            }
            db.note_scan(guard.rows.len() as u64, false);
            guard.project_rows(used)
        };
        rows = cross_join(rows, trows);
    }
    Ok(rows)
}

/// Evaluate a dynamic FROM clause left to right (set-returning functions
/// join laterally and may re-enter the database), returning the runtime
/// bindings and the joined row set.
fn scan_from(
    db: &Database,
    params: &[Value],
    from: &[FromItem],
) -> Result<(Vec<Binding>, Vec<Row>)> {
    let ctx = Ctx {
        db,
        params,
        fns: NO_FNS,
        group: None,
    };
    let mut bindings: Vec<Binding> = Vec::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for item in from {
        match item {
            FromItem::Table { name, alias } => {
                let table = db.get_table(name)?;
                let (cols, trows) = {
                    let guard = table.read();
                    db.note_scan(guard.rows.len() as u64, false);
                    (
                        guard
                            .schema
                            .columns
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>(),
                        guard.rows.clone(),
                    )
                };
                bindings.push(Binding {
                    qualifier: alias.clone().unwrap_or_else(|| name.clone()),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = cross_join(rows, trows);
            }
            FromItem::Function { name, args, alias } => {
                let env = Env {
                    bindings: &bindings,
                };
                let mut next = Vec::new();
                let mut out_cols: Option<Vec<String>> = None;
                for base in &rows {
                    let vals: Result<Vec<Value>> =
                        args.iter().map(|a| eval(&ctx, a, &env, base)).collect();
                    let result = db.call_table_fn(name, &vals?)?;
                    // A columnless empty result (a STRICT function's NULL
                    // short-circuit) contributes zero rows without pinning
                    // the schema — other input rows may still produce real
                    // output.
                    if result.columns.is_empty() && result.rows.is_empty() {
                        continue;
                    }
                    let mut cols = result.columns.clone();
                    // Single-column SRFs adopt the alias as the column name,
                    // as PostgreSQL does for `generate_series(…) AS id`.
                    if cols.len() == 1 {
                        if let Some(a) = alias {
                            cols = vec![a.to_ascii_lowercase()];
                        }
                    }
                    match &out_cols {
                        None => out_cols = Some(cols),
                        Some(prev) if *prev == cols => {}
                        Some(_) => {
                            return Err(SqlError::Execution(format!(
                                "function {name} returned inconsistent schemas across rows"
                            )))
                        }
                    }
                    for fr in result.rows {
                        if base.is_empty() {
                            next.push(fr);
                        } else {
                            let mut r = base.clone();
                            r.extend(fr);
                            next.push(r);
                        }
                    }
                }
                let cols = out_cols.unwrap_or_default();
                bindings.push(Binding {
                    qualifier: item.binding_name().to_ascii_lowercase(),
                    columns: cols,
                    offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
                });
                rows = next;
            }
        }
    }
    Ok((bindings, rows))
}

/// Run the resolved operator pipeline over the scanned rows: either a
/// lazy cursor (plain SELECT) or an eager materialization (pipeline
/// breakers present).
fn run_select<'db>(
    db: &'db Database,
    ops_src: OpsSource,
    source: Vec<Row>,
    params: &[Value],
) -> Result<Rows<'db>> {
    let (lazy, columns, distinct, limit) = {
        let ops = ops_src.ops();
        (
            ops.group.is_none() && ops.order_by.is_empty() && ops.distinct_order.is_empty(),
            ops.columns.clone(),
            ops.distinct,
            ops.limit,
        )
    };
    if lazy {
        return Ok(Rows {
            columns,
            state: RowsState::Lazy(Box::new(LazyScan {
                db,
                params: params.to_vec(),
                ops: ops_src,
                source: source.into_iter(),
                seen: distinct.then(HashSet::new),
                remaining: limit,
                failed: false,
            })),
        });
    }
    let rows = materialize(db, ops_src.ops(), source, params)?;
    Ok(Rows {
        columns,
        state: RowsState::Done(rows.into_iter()),
    })
}

/// Eager pipeline: filter → \[group → having\] → project → \[distinct\]
/// → sort → limit.
fn materialize(
    db: &Database,
    ops: &SelectOps,
    source: Vec<Row>,
    params: &[Value],
) -> Result<Vec<Row>> {
    let ctx = Ctx {
        db,
        params,
        fns: &ops.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };

    if let Some(gp) = &ops.group {
        // Grouping applies its own WHERE during the accumulation sweep.
        let groups = grouped_groups(&ctx, ops.where_clause.as_ref(), gp, &source)?;
        let keyed = emit_groups(db, params, ops, groups)?;
        return Ok(grouped_tail(keyed, ops));
    }

    let mut rows = source;
    if let Some(pred) = &ops.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if is_true(&eval(&ctx, pred, &env, &r)?)? {
                kept.push(r);
            }
        }
        rows = kept;
    }

    let mut keyed: Vec<(Vec<Value>, Row)>;
    if ops.distinct {
        // DISTINCT sorts on projected columns, so project everything now.
        keyed = Vec::with_capacity(rows.len());
        for r in &rows {
            let mut out = Vec::with_capacity(ops.projections.len());
            for e in &ops.projections {
                out.push(eval(&ctx, e, &env, r)?);
            }
            keyed.push((Vec::new(), out));
        }
    } else {
        // Ordered: sort keys evaluate per source row; projection runs after
        // the sort, only for the rows LIMIT keeps.
        keyed = Vec::with_capacity(rows.len());
        for r in rows {
            let mut sort_key = Vec::with_capacity(ops.order_by.len());
            for (e, _) in &ops.order_by {
                sort_key.push(eval(&ctx, e, &env, &r)?);
            }
            keyed.push((sort_key, r));
        }
    }

    if ops.distinct {
        return Ok(grouped_tail(keyed, ops));
    }
    sort_keyed(&mut keyed, &ops.order_by);
    let mut out_rows = Vec::with_capacity(keyed.len().min(ops.limit));
    for (_, r) in keyed.into_iter().take(ops.limit) {
        let mut out = Vec::with_capacity(ops.projections.len());
        for e in &ops.projections {
            out.push(eval(&ctx, e, &env, &r)?);
        }
        out_rows.push(out);
    }
    Ok(out_rows)
}

/// Stable multi-key sort shared by the grouped and plain ORDER BY paths.
fn sort_keyed(keyed: &mut [(Vec<Value>, Row)], order_by: &[(Expr, bool)]) {
    if order_by.is_empty() {
        return;
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in order_by.iter().enumerate() {
            let o = order_cmp(&ka[i], &kb[i]);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
}

/// DISTINCT ordering: sort deduplicated rows on projected column indices.
fn sort_by_output(keyed: &mut [(Vec<Value>, Row)], spec: &[(usize, bool)]) {
    if spec.is_empty() {
        return;
    }
    keyed.sort_by(|(_, ra), (_, rb)| {
        for (i, desc) in spec {
            let o = order_cmp(&ra[*i], &rb[*i]);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
}

/// Execute a static SELECT plan. `lazy` allows the plain zero-copy path
/// to return a [`GuardedScan`] cursor that streams under the table read
/// guard; internal consumers that write while reading (`INSERT … SELECT`
/// into the scanned table) pass `false` and get the output materialized
/// under the guard instead, which releases it before any insert.
fn run_static_select<'db>(
    db: &'db Database,
    plan: &Arc<PhysicalPlan>,
    params: &[Value],
    lazy: bool,
) -> Result<Rows<'db>> {
    let PhysicalPlan::StaticSelect(sp) = &**plan else {
        unreachable!("run_static_select takes a static SELECT plan");
    };
    // Zero-copy scan: the plan classified every scan-side expression as
    // re-entrancy-free, so the statement runs directly over the table's
    // rows under the read guard — no snapshot is taken, and only the
    // projection of rows that survive the filter is ever materialized.
    if let Some(z) = &sp.zero {
        let handle = db.get_table(&sp.tables[0])?;
        let ctx = Ctx {
            db,
            params,
            fns: &sp.ops.fns,
            group: None,
        };
        let env = Env {
            bindings: NO_BINDINGS,
        };
        match &z.kind {
            // Grouped: the accumulation sweep folds borrowed rows under
            // the guard; emission (HAVING, projection, ORDER BY — which
            // may still call arbitrary UDFs) runs after it drops.
            ZeroScanKind::Grouped(gp) => {
                let groups = {
                    let guard = handle.read();
                    if !schema_matches(&guard.schema, &sp.schemas[0]) {
                        return Err(stale_plan(&sp.tables[0]));
                    }
                    db.note_scan(guard.rows.len() as u64, true);
                    grouped_groups(&ctx, z.where_clause.as_ref(), gp, &guard.rows)?
                };
                let keyed = emit_groups(db, params, &sp.ops, groups)?;
                let rows = grouped_tail(keyed, &sp.ops);
                return Ok(Rows {
                    columns: sp.ops.columns.clone(),
                    state: RowsState::Done(rows.into_iter()),
                });
            }
            // Plain / DISTINCT / ordered SELECT: filter and project per
            // borrowed row; the sort (if any) runs after the guard
            // drops, over pruned projections instead of full-row clones.
            ZeroScanKind::Select {
                projections,
                order_by,
            } => {
                // Projection lists that are plain column references (the
                // common `SELECT a, b, c` shape) clone slots directly,
                // skipping expression dispatch per value.
                let slot_projs: Option<Vec<usize>> = projections
                    .iter()
                    .map(|e| match e {
                        Expr::Slot(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                let project = |r: &Row| -> Result<Row> {
                    match &slot_projs {
                        Some(slots) => Ok(slots.iter().map(|&i| r[i].clone()).collect()),
                        None => {
                            let mut out = Vec::with_capacity(projections.len());
                            for e in projections {
                                out.push(eval(&ctx, e, &env, r)?);
                            }
                            Ok(out)
                        }
                    }
                };
                let ordered = !order_by.is_empty() || !sp.ops.distinct_order.is_empty();
                if !ordered {
                    // True streaming: the cursor owns the read guard and
                    // filters/projects per `next()` — one pass, nothing
                    // buffered, early-stopping consumers pay only for
                    // what they read. A `lazy == false` caller (an
                    // INSERT … SELECT source) drains the same cursor
                    // here, releasing the guard before returning.
                    let guard = handle.read_arc();
                    if !schema_matches(&guard.schema, &sp.schemas[0]) {
                        return Err(stale_plan(&sp.tables[0]));
                    }
                    // Rows examined are charged when the cursor finishes
                    // (see `GuardedScan::drop`); only the strategy is
                    // recorded here.
                    db.note_scan(0, true);
                    let cursor = Rows {
                        columns: sp.ops.columns.clone(),
                        state: RowsState::Guarded(Box::new(GuardedScan {
                            db,
                            params: params.to_vec(),
                            plan: Arc::clone(plan),
                            guard_key: Database::note_cursor_guard(&handle),
                            guard,
                            slot_projs,
                            idx: 0,
                            seen: sp.ops.distinct.then(HashSet::new),
                            remaining: sp.ops.limit,
                            failed: false,
                        })),
                    };
                    if lazy {
                        return Ok(cursor);
                    }
                    return cursor.into_result().map(Rows::from_result);
                }
                // Sort keys and projections evaluate per surviving row;
                // the sort (and DISTINCT + LIMIT) runs on those pruned
                // projections after the guard drops.
                let guard = handle.read();
                if !schema_matches(&guard.schema, &sp.schemas[0]) {
                    return Err(stale_plan(&sp.tables[0]));
                }
                let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
                for r in &guard.rows {
                    if let Some(p) = &z.where_clause {
                        if !is_true(&eval(&ctx, p, &env, r)?)? {
                            continue;
                        }
                    }
                    let mut sort_key = Vec::with_capacity(order_by.len());
                    for (e, _) in order_by {
                        sort_key.push(eval(&ctx, e, &env, r)?);
                    }
                    keyed.push((sort_key, project(r)?));
                }
                db.note_scan(guard.rows.len() as u64, true);
                drop(guard);
                let rows = grouped_tail(keyed, &sp.ops);
                return Ok(Rows {
                    columns: sp.ops.columns.clone(),
                    state: RowsState::Done(rows.into_iter()),
                });
            }
        }
    }
    let rows = scan_tables(db, &sp.tables, &sp.schemas, &sp.used_cols)?;
    run_select(db, OpsSource::Plan(Arc::clone(plan)), rows, params)
}

fn run_dynamic_select<'db>(
    db: &'db Database,
    sel: &SelectStmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    let (bindings, rows) = scan_from(db, params, &sel.from)?;
    let ops = crate::plan::build_select(db, sel, &bindings)?;
    run_select(db, OpsSource::Owned(Box::new(ops)), rows, params)
}

// ---------------------------------------------------------------------------
// DML / DDL execution
// ---------------------------------------------------------------------------

/// One-row `count` status result shared by the DML statements.
fn count_result<'db>(n: i64) -> Rows<'db> {
    let mut q = QueryResult::new(vec!["count".into()]);
    q.rows.push(vec![Value::Int(n)]);
    Rows::from_result(q)
}

/// Map a source row onto the target schema through an INSERT column list.
fn map_insert_row(r: Row, ip: &InsertPlan) -> Result<Row> {
    match &ip.column_idxs {
        None => Ok(r),
        Some(idxs) => {
            if r.len() != idxs.len() {
                return Err(SqlError::Constraint(format!(
                    "INSERT row has {} values for {} columns",
                    r.len(),
                    idxs.len()
                )));
            }
            let mut full = vec![Value::Null; ip.schema_len];
            for (v, &i) in r.into_iter().zip(idxs) {
                full[i] = v;
            }
            Ok(full)
        }
    }
}

fn run_insert<'db>(
    db: &'db Database,
    stmt: &Stmt,
    ip: &InsertPlan,
    params: &[Value],
) -> Result<Rows<'db>> {
    let Stmt::Insert { source, .. } = stmt else {
        unreachable!("insert plan compiled from a non-INSERT statement");
    };
    let handle = db.get_table(&ip.table)?;
    Database::check_writable(&ip.table, &handle)?;
    // The plan's column mapping is positional: if the target's schema
    // changed since planning (a DDL race past the epoch check), fail as
    // stale instead of silently mapping values into the wrong columns.
    if !schema_matches(&handle.read().schema, &ip.schema_cols) {
        return Err(stale_plan(&ip.table));
    }
    let n = match source {
        InsertSource::Values(rows) => {
            let ctx = Ctx {
                db,
                params,
                fns: NO_FNS,
                group: None,
            };
            let env = Env {
                bindings: NO_BINDINGS,
            };
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let vals: Result<Row> = row.iter().map(|e| eval(&ctx, e, &env, &[])).collect();
                out.push(map_insert_row(vals?, ip)?);
            }
            let n = out.len();
            let mut guard = handle.write();
            for r in out {
                guard.insert(r)?;
            }
            n
        }
        InsertSource::Select(sel) => {
            // The source runs with `lazy = false`, so it never hands back
            // a cursor holding a table guard: a zero-copy static source
            // arrives fully materialized (produced under the source
            // table's read guard, released before the inserts — which is
            // why INSERT INTO t SELECT FROM t is safe and observes the
            // pre-statement rows), while snapshot/dynamic sources stream
            // lazily off their guard-free snapshot. There are no
            // transactions: an error mid-stream leaves the rows inserted
            // so far (the same partial-insert semantics a mid-batch
            // coercion failure always had).
            let src_plan = ip
                .source
                .as_ref()
                .expect("INSERT … SELECT has a source plan");
            let src = match &**src_plan {
                PhysicalPlan::StaticSelect(_) => run_static_select(db, src_plan, params, false)?,
                PhysicalPlan::DynamicSelect => run_dynamic_select(db, sel, params)?,
                _ => unreachable!("INSERT source compiles to a SELECT plan"),
            };
            let mut n = 0usize;
            match src.state {
                // Fully materialized source: nothing is evaluated per
                // row anymore, so one write guard covers the whole batch
                // instead of a lock round-trip per row.
                RowsState::Done(it) => {
                    let mut guard = handle.write();
                    for r in it {
                        guard.insert(map_insert_row(r, ip)?)?;
                        n += 1;
                    }
                }
                // Lazy sources still evaluate expressions (possibly
                // re-entrant UDFs) per row: keep the write lock scoped to
                // each insert so those evaluations run lock-free.
                state => {
                    let src = Rows {
                        columns: src.columns,
                        state,
                    };
                    for r in src {
                        let full = map_insert_row(r?, ip)?;
                        handle.write().insert(full)?;
                        n += 1;
                    }
                }
            }
            n
        }
    };
    Ok(count_result(n as i64))
}

/// UPDATE: evaluate the predicate and SET expressions against each row,
/// then assign the new values. When every expression is re-entrancy-free
/// (the planned common case) the whole statement runs under one write
/// guard and touches only the matching rows, by index — nothing is
/// snapshotted and non-matching rows are never copied. Re-entrant
/// expressions keep the old snapshot-evaluate-rebuild path so UDFs in
/// SET or WHERE may call back into the database.
fn run_update<'db>(db: &'db Database, up: &DmlPlan, params: &[Value]) -> Result<Rows<'db>> {
    let ctx = Ctx {
        db,
        params,
        fns: &up.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let handle = db.get_table(&up.table)?;
    Database::check_writable(&up.table, &handle)?;
    if up.in_place {
        let mut guard = handle.write();
        if !schema_matches(&guard.schema, &up.schema_cols) {
            return Err(stale_plan(&up.table));
        }
        // Pass 1 (read-only): evaluate the predicate per row and, for
        // hits, the new values against the *old* row. Errors surface
        // before any mutation.
        let mut pending: Vec<(usize, Vec<Value>)> = Vec::new();
        for (i, r) in guard.rows.iter().enumerate() {
            let hit = match &up.where_clause {
                None => true,
                Some(p) => is_true(&eval(&ctx, p, &env, r)?)?,
            };
            if !hit {
                continue;
            }
            let mut vals = Vec::with_capacity(up.sets.len());
            for (e, &c) in up.sets.iter().zip(&up.set_idx) {
                let v = eval(&ctx, e, &env, r)?;
                vals.push(v.coerce_to(guard.schema.columns[c].dtype)?);
            }
            pending.push((i, vals));
        }
        db.note_scan(guard.rows.len() as u64, true);
        // Pass 2: write the new values into the matching rows.
        let n = pending.len() as i64;
        for (i, vals) in pending {
            for (v, &c) in vals.into_iter().zip(&up.set_idx) {
                guard.rows[i][c] = v;
            }
        }
        return Ok(count_result(n));
    }
    // Snapshot fallback: evaluation must run without the lock so the
    // expressions may re-enter the database.
    let (dtypes, snapshot) = {
        let g = handle.read();
        if !schema_matches(&g.schema, &up.schema_cols) {
            return Err(stale_plan(&up.table));
        }
        db.note_scan(g.rows.len() as u64, false);
        let dtypes: Vec<_> = g.schema.columns.iter().map(|c| c.dtype).collect();
        (dtypes, g.rows.clone())
    };
    let mut new_rows = Vec::with_capacity(snapshot.len());
    let mut n = 0i64;
    for r in snapshot {
        let hit = match &up.where_clause {
            None => true,
            Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
        };
        if hit {
            let mut updated = r.clone();
            for (e, &i) in up.sets.iter().zip(&up.set_idx) {
                let v = eval(&ctx, e, &env, &r)?;
                updated[i] = v.coerce_to(dtypes[i])?;
            }
            new_rows.push(updated);
            n += 1;
        } else {
            new_rows.push(r);
        }
    }
    handle.write().rows = new_rows;
    Ok(count_result(n))
}

/// DELETE: with a re-entrancy-free predicate the statement marks matching
/// rows under one write guard and compacts the storage in place (a stable
/// `retain` — survivors are moved, never cloned). A re-entrant predicate
/// falls back to snapshot evaluation.
fn run_delete<'db>(db: &'db Database, dp: &DmlPlan, params: &[Value]) -> Result<Rows<'db>> {
    let ctx = Ctx {
        db,
        params,
        fns: &dp.fns,
        group: None,
    };
    let env = Env {
        bindings: NO_BINDINGS,
    };
    let handle = db.get_table(&dp.table)?;
    Database::check_writable(&dp.table, &handle)?;
    if dp.in_place {
        let mut guard = handle.write();
        if !schema_matches(&guard.schema, &dp.schema_cols) {
            return Err(stale_plan(&dp.table));
        }
        let mut hits = vec![false; guard.rows.len()];
        for (i, r) in guard.rows.iter().enumerate() {
            hits[i] = match &dp.where_clause {
                None => true,
                Some(p) => is_true(&eval(&ctx, p, &env, r)?)?,
            };
        }
        db.note_scan(guard.rows.len() as u64, true);
        let n = hits.iter().filter(|&&h| h).count() as i64;
        let mut i = 0;
        guard.rows.retain(|_| {
            let keep = !hits[i];
            i += 1;
            keep
        });
        return Ok(count_result(n));
    }
    let snapshot = {
        let g = handle.read();
        if !schema_matches(&g.schema, &dp.schema_cols) {
            return Err(stale_plan(&dp.table));
        }
        db.note_scan(g.rows.len() as u64, false);
        g.rows.clone()
    };
    let mut kept = Vec::with_capacity(snapshot.len());
    let mut n = 0i64;
    for r in snapshot {
        let hit = match &dp.where_clause {
            None => true,
            Some(p) => is_true(&eval(&ctx, p, &env, &r)?)?,
        };
        if hit {
            n += 1;
        } else {
            kept.push(r);
        }
    }
    handle.write().rows = kept;
    Ok(count_result(n))
}

/// DDL — statements without a compiled operator tree.
fn run_other<'db>(db: &'db Database, stmt: &Stmt) -> Result<Rows<'db>> {
    match stmt {
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let cols = columns
                .iter()
                .map(|(n, t)| Column::new(n, *t))
                .collect::<Vec<_>>();
            let schema = Schema::new(cols)?;
            match db.create_table(name, Table::new(schema)) {
                Ok(()) => {}
                Err(SqlError::Constraint(_)) if *if_not_exists => {}
                Err(e) => return Err(e),
            }
            Ok(Rows::from_result(QueryResult::new(vec![])))
        }
        Stmt::DropTable { name, if_exists } => {
            match db.drop_table(name) {
                Ok(()) => {}
                Err(SqlError::UnknownTable(_)) if *if_exists => {}
                Err(e) => return Err(e),
            }
            Ok(Rows::from_result(QueryResult::new(vec![])))
        }
        Stmt::Select(_) | Stmt::Insert { .. } | Stmt::Update { .. } | Stmt::Delete { .. } => {
            unreachable!("DML executes through its compiled plan")
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Execute a statement against its compiled plan with bind parameters;
/// `SELECT`s stream through [`Rows`], everything else returns its (tiny)
/// materialized status result.
pub(crate) fn execute<'db>(
    db: &'db Database,
    stmt: &Stmt,
    plan: &Arc<PhysicalPlan>,
    params: &[Value],
) -> Result<Rows<'db>> {
    match &**plan {
        PhysicalPlan::StaticSelect(_) => run_static_select(db, plan, params, true),
        PhysicalPlan::DynamicSelect => {
            let Stmt::Select(sel) = stmt else {
                unreachable!("dynamic SELECT plan compiled from a non-SELECT statement");
            };
            run_dynamic_select(db, sel, params)
        }
        PhysicalPlan::Insert(ip) => run_insert(db, stmt, ip, params),
        PhysicalPlan::Update(up) => run_update(db, up, params),
        PhysicalPlan::Delete(dp) => run_delete(db, dp, params),
        PhysicalPlan::Other => run_other(db, stmt),
    }
}

/// Compile and execute one statement, materializing the result. Used by
/// the uncached execution path; prepared statements share their plan
/// through the statement cache instead.
pub fn execute_stmt(db: &Database, stmt: &Stmt, params: &[Value]) -> Result<QueryResult> {
    execute_stmt_rows(db, stmt, params)?.into_result()
}

/// Compile and execute one statement, streaming the result rows.
pub fn execute_stmt_rows<'db>(
    db: &'db Database,
    stmt: &Stmt,
    params: &[Value],
) -> Result<Rows<'db>> {
    let plan = Arc::new(crate::plan::compile(db, stmt)?);
    db.note_plan_built();
    execute(db, stmt, &plan, params)
}
