//! Built-in scalar and set-returning functions.
//!
//! The UDF signatures deliberately receive a [`Database`] handle so that
//! user-defined functions (pgFMU's `fmu_parest`, `fmu_simulate`, MADlib's
//! `arima_train`, …) can execute SQL themselves — the re-entrancy at the
//! heart of the paper's "in-place computation inside the DBMS" argument.
//!
//! All built-ins are registered through the typed [`crate::udf::UdfBuilder`]
//! surface, so arity/type errors are produced centrally and every function
//! maintains a call counter. Engine counters (statement-cache stats and
//! those call counts) are queryable through the `pgfmu_stats()`
//! set-returning function.

use std::sync::Arc;

use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::table::QueryResult;
use crate::udf::ArgKind;
use crate::value::Value;

/// A scalar UDF: `(db, args) -> value`.
pub type ScalarFn = Arc<dyn Fn(&Database, &[Value]) -> Result<Value> + Send + Sync>;

/// A set-returning UDF: `(db, args) -> table`.
pub type TableFn = Arc<dyn Fn(&Database, &[Value]) -> Result<QueryResult> + Send + Sync>;

/// Pure single-argument builtins the planner may evaluate natively —
/// no registry dispatch, no argument-coercion allocation, and (because
/// they cannot touch the database) safe to run inside a zero-copy scan
/// that holds a table read guard. Re-registering the name as a UDF
/// disables its intrinsic and restores ordinary dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Intrinsic {
    Floor,
    Ceil,
    Sqrt,
    Exp,
    Ln,
    Abs,
    ExtractEpoch,
}

/// Evaluate an intrinsic on the happy path. `None` means "not handled
/// natively" — the caller falls back to the registered UDF, which owns
/// the arity/type error wording.
pub(crate) fn eval_intrinsic(op: Intrinsic, args: &[Value]) -> Option<Result<Value>> {
    let [arg] = args else { return None };
    // All intrinsics are STRICT: a NULL argument yields NULL.
    if arg.is_null() {
        return Some(Ok(Value::Null));
    }
    let float = |f: fn(f64) -> f64| match arg {
        Value::Float(x) => Some(Ok(Value::Float(f(*x)))),
        Value::Int(i) => Some(Ok(Value::Float(f(*i as f64)))),
        _ => None,
    };
    match op {
        Intrinsic::Floor => float(f64::floor),
        Intrinsic::Ceil => float(f64::ceil),
        Intrinsic::Sqrt => float(f64::sqrt),
        Intrinsic::Exp => float(f64::exp),
        Intrinsic::Ln => float(f64::ln),
        Intrinsic::Abs => match arg {
            Value::Int(i) => Some(Ok(Value::Int(i.abs()))),
            Value::Float(x) => Some(Ok(Value::Float(x.abs()))),
            _ => None,
        },
        Intrinsic::ExtractEpoch => match arg {
            Value::Timestamp(t) | Value::Interval(t) => Some(Ok(Value::Int(*t))),
            _ => None,
        },
    }
}

/// Register the built-in scalar functions.
pub fn register_builtin_scalars(db: &Database) {
    let simple = |db: &Database, name: &'static str, f: fn(f64) -> f64| {
        db.udf(name)
            .arg("x", ArgKind::Float)
            .strict()
            .scalar(move |_db, args| Ok(Value::Float(f(args.f64(0)))));
    };
    simple(db, "sqrt", f64::sqrt);
    simple(db, "exp", f64::exp);
    simple(db, "ln", f64::ln);
    simple(db, "floor", f64::floor);
    simple(db, "ceil", f64::ceil);
    simple(db, "ceiling", f64::ceil);

    // abs preserves integer-ness, so it takes its argument untyped.
    db.udf("abs")
        .arg("x", ArgKind::Any)
        .strict()
        .scalar(|_db, args| match args.value(0) {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            v => Ok(Value::Float(v.as_f64()?.abs())),
        });

    db.udf("round")
        .arg("x", ArgKind::Float)
        .opt_arg("digits", ArgKind::Int)
        .strict()
        .scalar(|_db, args| {
            let x = args.f64(0);
            match args.opt_i64(1) {
                None => Ok(Value::Float(x.round())),
                Some(d) => {
                    let scale = 10f64.powi(d as i32);
                    Ok(Value::Float((x * scale).round() / scale))
                }
            }
        });

    db.udf("power")
        .arg("base", ArgKind::Float)
        .arg("exponent", ArgKind::Float)
        .strict()
        .scalar(|_db, args| Ok(Value::Float(args.f64(0).powf(args.f64(1)))));

    db.udf("coalesce")
        .variadic(ArgKind::Any)
        .scalar(|_db, args| {
            for a in args.raw() {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        });

    db.udf("nullif")
        .arg("a", ArgKind::Any)
        .arg("b", ArgKind::Any)
        .scalar(|_db, args| {
            if args.value(0) == args.value(1) {
                Ok(Value::Null)
            } else {
                Ok(args.value(0).clone())
            }
        });

    db.udf("lower")
        .arg("s", ArgKind::Text)
        .strict()
        .scalar(|_db, args| Ok(Value::Text(args.text(0).to_lowercase())));

    db.udf("upper")
        .arg("s", ArgKind::Text)
        .strict()
        .scalar(|_db, args| Ok(Value::Text(args.text(0).to_uppercase())));

    db.udf("length")
        .arg("s", ArgKind::Text)
        .strict()
        .scalar(|_db, args| Ok(Value::Int(args.text(0).chars().count() as i64)));

    db.udf("greatest")
        .variadic(ArgKind::Any)
        .scalar(|_db, args| {
            let mut best: Option<Value> = None;
            for a in args.raw().iter().filter(|a| !a.is_null()) {
                best = Some(match best {
                    None => a.clone(),
                    Some(b) => {
                        if crate::exec::compare(a, &b)? == Some(std::cmp::Ordering::Greater) {
                            a.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        });

    db.udf("least").variadic(ArgKind::Any).scalar(|_db, args| {
        let mut best: Option<Value> = None;
        for a in args.raw().iter().filter(|a| !a.is_null()) {
            best = Some(match best {
                None => a.clone(),
                Some(b) => {
                    if crate::exec::compare(a, &b)? == Some(std::cmp::Ordering::Less) {
                        a.clone()
                    } else {
                        b
                    }
                }
            });
        }
        Ok(best.unwrap_or(Value::Null))
    });

    // extract(epoch from ts) is spelled extract_epoch(ts) in our dialect.
    db.udf("extract_epoch")
        .arg("t", ArgKind::Any)
        .strict()
        .scalar(|_db, args| match args.value(0) {
            Value::Timestamp(t) | Value::Interval(t) => Ok(Value::Int(*t)),
            _ => Err(SqlError::Type(
                "extract_epoch() takes a timestamp or interval".into(),
            )),
        });

    // Mark the pure math builtins as planner intrinsics (after the typed
    // registrations above, which clear any previous mark).
    for (name, op) in [
        ("floor", Intrinsic::Floor),
        ("ceil", Intrinsic::Ceil),
        ("ceiling", Intrinsic::Ceil),
        ("sqrt", Intrinsic::Sqrt),
        ("exp", Intrinsic::Exp),
        ("ln", Intrinsic::Ln),
        ("abs", Intrinsic::Abs),
        ("extract_epoch", Intrinsic::ExtractEpoch),
    ] {
        db.mark_intrinsic(name, op);
    }
}

/// Register the built-in set-returning functions.
pub fn register_builtin_table_fns(db: &Database) {
    // generate_series has int and timestamp overloads, so it dispatches on
    // the raw values of a variadic signature.
    db.udf("generate_series")
        .variadic(ArgKind::Any)
        .table(|_db, args| {
            let mut q = QueryResult::new(vec!["generate_series".into()]);
            match args.raw() {
                [Value::Int(a), Value::Int(b)] => {
                    for v in *a..=*b {
                        q.rows.push(vec![Value::Int(v)]);
                    }
                }
                [Value::Int(a), Value::Int(b), Value::Int(step)] => {
                    if *step == 0 {
                        return Err(SqlError::Execution(
                            "generate_series step cannot be zero".into(),
                        ));
                    }
                    let mut v = *a;
                    while (*step > 0 && v <= *b) || (*step < 0 && v >= *b) {
                        q.rows.push(vec![Value::Int(v)]);
                        v += step;
                    }
                }
                [Value::Timestamp(a), Value::Timestamp(b), Value::Interval(step)] => {
                    if *step <= 0 {
                        return Err(SqlError::Execution(
                            "generate_series interval must be positive".into(),
                        ));
                    }
                    let mut t = *a;
                    while t <= *b {
                        q.rows.push(vec![Value::Timestamp(t)]);
                        t += step;
                    }
                }
                _ => {
                    return Err(SqlError::Type(
                        "generate_series expects (int, int[, int]) or \
                         (timestamp, timestamp, interval)"
                            .into(),
                    ))
                }
            }
            Ok(q)
        });

    // Engine observability: parse/plan/cache counters and per-UDF call
    // counts as a queryable relation `(stat text, value bigint)`.
    db.udf("pgfmu_stats").table(|db, _args| {
        let (parses, cache_hits) = db.statement_stats();
        let (plans_built, plan_cache_hits) = db.plan_stats();
        let mut q = QueryResult::new(vec!["stat".into(), "value".into()]);
        let mut push = |stat: &str, value: u64| {
            q.rows
                .push(vec![Value::Text(stat.into()), Value::Int(value as i64)]);
        };
        push("parses", parses);
        push("cache_hits", cache_hits);
        push("plans_built", plans_built);
        push("plan_cache_hits", plan_cache_hits);
        push("agg_evals", db.agg_eval_count());
        let (rows_scanned, zero_copy, fallbacks) = db.scan_stats();
        push("rows_scanned", rows_scanned);
        push("scans_zero_copy", zero_copy);
        push("scan_fallbacks", fallbacks);
        push("stmt_cache_size", db.stmt_cache_len() as u64);
        push("stmt_cache_capacity", db.stmt_cache_capacity() as u64);
        let (committed, rolled_back) = db.txn_stats();
        push("txns_committed", committed);
        push("txns_rolled_back", rolled_back);
        push("versions_gc", db.gc_stats());
        let (index_scans, seq_scans, hash_joins, analyze_runs) = db.access_stats();
        push("index_scans", index_scans);
        push("seq_scans", seq_scans);
        push("hash_joins", hash_joins);
        push("analyze_runs", analyze_runs);
        let (batches_filled, vectorized_ops, vectorized_fallbacks) = db.vectorized_stats();
        push("batches_filled", batches_filled);
        push("vectorized_ops", vectorized_ops);
        push("vectorized_fallbacks", vectorized_fallbacks);
        let (fleet_tasks, fleet_workers, fleet_task_ns) = db.fleet_stats();
        push("fleet_tasks", fleet_tasks);
        push("fleet_workers", fleet_workers);
        push("fleet_task_ns", fleet_task_ns);
        let (shard_count, shard_waits, group_commits, batched) = db.shard_stats();
        push("shard_count", shard_count);
        push("write_shard_waits", shard_waits);
        push("group_commits", group_commits);
        push("group_commit_batched", batched);
        for (name, count) in db.udf_call_counts() {
            if count > 0 {
                push(&format!("calls.{name}"), count);
            }
        }
        Ok(q)
    });

    // Statistics refresh from SQL: `pgfmu_analyze()` recollects planner
    // statistics for every table (or one named table) and returns the
    // analyzed row counts, mirroring `ANALYZE` as a queryable relation.
    db.udf("pgfmu_analyze")
        .opt_arg("table", ArgKind::Text)
        .table(|db, args| {
            let table = args.opt_text(0);
            let mut q = QueryResult::new(vec!["table".into(), "rows".into()]);
            for (name, rows) in db.analyze(table)? {
                q.rows
                    .push(vec![Value::Text(name), Value::Int(rows as i64)]);
            }
            Ok(q)
        });
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::value::Value;

    fn db() -> Database {
        Database::new()
    }

    #[test]
    fn scalar_math_functions() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT abs(-4)"), Value::Int(4));
        assert_eq!(one("SELECT abs(-4.5)"), Value::Float(4.5));
        assert_eq!(one("SELECT sqrt(9.0)"), Value::Float(3.0));
        assert_eq!(one("SELECT round(2.567, 2)"), Value::Float(2.57));
        assert_eq!(one("SELECT power(2, 10)"), Value::Float(1024.0));
        assert_eq!(one("SELECT ceiling(1.2)"), Value::Float(2.0));
        assert_eq!(one("SELECT floor(1.8)"), Value::Float(1.0));
    }

    #[test]
    fn null_handling() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT coalesce(NULL, NULL, 3)"), Value::Int(3));
        assert_eq!(one("SELECT coalesce(NULL)"), Value::Null);
        assert_eq!(one("SELECT nullif(1, 1)"), Value::Null);
        assert_eq!(one("SELECT nullif(1, 2)"), Value::Int(1));
        assert_eq!(one("SELECT abs(NULL)"), Value::Null);
    }

    #[test]
    fn arity_and_type_errors_are_central() {
        let d = db();
        assert!(d.execute("SELECT sqrt()").is_err());
        assert!(d.execute("SELECT sqrt(1, 2)").is_err());
        assert!(d.execute("SELECT lower(42)").is_err());
        let err = d.execute("SELECT power(2)").unwrap_err().to_string();
        assert!(err.contains("power(integer) does not exist"), "{err}");
    }

    #[test]
    fn text_functions() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT lower('ABC')"), Value::Text("abc".into()));
        assert_eq!(one("SELECT upper('abc')"), Value::Text("ABC".into()));
        assert_eq!(one("SELECT length('hello')"), Value::Int(5));
        assert_eq!(one("SELECT greatest(1, 5, 3)"), Value::Int(5));
        assert_eq!(one("SELECT least(2, NULL, 1)"), Value::Int(1));
    }

    #[test]
    fn generate_series_ints() {
        let d = db();
        let q = d.execute("SELECT * FROM generate_series(1, 5)").unwrap();
        assert_eq!(q.len(), 5);
        let q = d
            .execute("SELECT * FROM generate_series(10, 1, -3)")
            .unwrap();
        assert_eq!(q.len(), 4);
        assert!(d.execute("SELECT * FROM generate_series(1, 5, 0)").is_err());
    }

    #[test]
    fn generate_series_timestamps() {
        let d = db();
        let q = d
            .execute(
                "SELECT * FROM generate_series(timestamp '2015-01-01', \
                 timestamp '2015-01-02', interval '1 hour') AS time",
            )
            .unwrap();
        assert_eq!(q.len(), 25);
        assert_eq!(q.columns, vec!["time"]);
    }

    #[test]
    fn extract_epoch() {
        let d = db();
        let v = d
            .execute("SELECT extract_epoch(timestamp '1970-01-01 01:00')")
            .unwrap()
            .scalar()
            .unwrap()
            .clone();
        assert_eq!(v, Value::Int(3600));
    }

    #[test]
    fn pgfmu_stats_surfaces_engine_counters() {
        let d = db();
        d.execute("CREATE TABLE t (v int)").unwrap();
        d.execute("INSERT INTO t VALUES (1)").unwrap();
        d.execute("SELECT sqrt(4.0)").unwrap();
        d.execute("SELECT sqrt(4.0)").unwrap(); // cache hit + second call
        let q = d.execute("SELECT * FROM pgfmu_stats()").unwrap();
        assert_eq!(q.columns, vec!["stat", "value"]);
        let get = |stat: &str| -> i64 {
            q.rows
                .iter()
                .find(|r| r[0] == Value::Text(stat.into()))
                .unwrap_or_else(|| panic!("missing stat {stat}"))[1]
                .as_i64()
                .unwrap()
        };
        assert!(get("parses") >= 4);
        assert!(get("cache_hits") >= 1);
        assert!(get("stmt_cache_size") >= 1);
        assert_eq!(
            get("stmt_cache_capacity"),
            crate::db::DEFAULT_STMT_CACHE_CAPACITY as i64
        );
        assert_eq!(get("calls.sqrt"), 2);
        assert_eq!(get("calls.pgfmu_stats"), 1);
        assert!(get("shard_count") >= 1, "shard count is always at least 1");
        assert_eq!(get("write_shard_waits"), 0, "uncontended single thread");
        assert_eq!(get("group_commits"), 0, "no transactional commits ran");
        assert_eq!(get("group_commit_batched"), 0);
        // Counters are monotone across calls.
        let q2 = d
            .execute("SELECT value FROM pgfmu_stats() WHERE stat = 'calls.pgfmu_stats'")
            .unwrap();
        assert_eq!(q2.rows[0][0], Value::Int(2));
    }
}
