//! Built-in scalar and set-returning functions.
//!
//! The UDF signatures deliberately receive a [`Database`] handle so that
//! user-defined functions (pgFMU's `fmu_parest`, `fmu_simulate`, MADlib's
//! `arima_train`, …) can execute SQL themselves — the re-entrancy at the
//! heart of the paper's "in-place computation inside the DBMS" argument.

use std::sync::Arc;

use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::table::QueryResult;
use crate::value::Value;

/// A scalar UDF: `(db, args) -> value`.
pub type ScalarFn = Arc<dyn Fn(&Database, &[Value]) -> Result<Value> + Send + Sync>;

/// A set-returning UDF: `(db, args) -> table`.
pub type TableFn = Arc<dyn Fn(&Database, &[Value]) -> Result<QueryResult> + Send + Sync>;

fn f64_arg(args: &[Value], i: usize, name: &str) -> Result<f64> {
    args.get(i)
        .ok_or_else(|| SqlError::Type(format!("{name}: missing argument {i}")))?
        .as_f64()
}

/// Register the built-in scalar functions.
pub fn register_builtin_scalars(db: &Database) {
    let simple = |db: &Database, name: &'static str, f: fn(f64) -> f64| {
        db.register_scalar(name, move |_db, args| {
            if args.len() != 1 {
                return Err(SqlError::Type(format!("{name}() takes one argument")));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Float(f(args[0].as_f64()?)))
        });
    };
    simple(db, "sqrt", f64::sqrt);
    simple(db, "exp", f64::exp);
    simple(db, "ln", f64::ln);
    simple(db, "floor", f64::floor);
    simple(db, "ceil", f64::ceil);
    simple(db, "ceiling", f64::ceil);

    db.register_scalar("abs", |_db, args| {
        if args.len() != 1 {
            return Err(SqlError::Type("abs() takes one argument".into()));
        }
        Ok(match &args[0] {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(i.abs()),
            v => Value::Float(v.as_f64()?.abs()),
        })
    });

    db.register_scalar("round", |_db, args| match args {
        [Value::Null] | [Value::Null, _] => Ok(Value::Null),
        [v] => Ok(Value::Float(v.as_f64()?.round())),
        [v, d] => {
            let scale = 10f64.powi(d.as_i64()? as i32);
            Ok(Value::Float((v.as_f64()? * scale).round() / scale))
        }
        _ => Err(SqlError::Type("round() takes one or two arguments".into())),
    });

    db.register_scalar("power", |_db, args| {
        if args.len() != 2 {
            return Err(SqlError::Type("power() takes two arguments".into()));
        }
        if args[0].is_null() || args[1].is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Float(
            f64_arg(args, 0, "power")?.powf(f64_arg(args, 1, "power")?),
        ))
    });

    db.register_scalar("coalesce", |_db, args| {
        for a in args {
            if !a.is_null() {
                return Ok(a.clone());
            }
        }
        Ok(Value::Null)
    });

    db.register_scalar("nullif", |_db, args| {
        if args.len() != 2 {
            return Err(SqlError::Type("nullif() takes two arguments".into()));
        }
        if args[0] == args[1] {
            Ok(Value::Null)
        } else {
            Ok(args[0].clone())
        }
    });

    db.register_scalar("lower", |_db, args| match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Text(s)] => Ok(Value::Text(s.to_lowercase())),
        _ => Err(SqlError::Type("lower() takes one text argument".into())),
    });

    db.register_scalar("upper", |_db, args| match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Text(s)] => Ok(Value::Text(s.to_uppercase())),
        _ => Err(SqlError::Type("upper() takes one text argument".into())),
    });

    db.register_scalar("length", |_db, args| match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Text(s)] => Ok(Value::Int(s.chars().count() as i64)),
        _ => Err(SqlError::Type("length() takes one text argument".into())),
    });

    db.register_scalar("greatest", |_db, args| {
        let mut best: Option<Value> = None;
        for a in args.iter().filter(|a| !a.is_null()) {
            best = Some(match best {
                None => a.clone(),
                Some(b) => {
                    if crate::exec::compare(a, &b)? == Some(std::cmp::Ordering::Greater) {
                        a.clone()
                    } else {
                        b
                    }
                }
            });
        }
        Ok(best.unwrap_or(Value::Null))
    });

    db.register_scalar("least", |_db, args| {
        let mut best: Option<Value> = None;
        for a in args.iter().filter(|a| !a.is_null()) {
            best = Some(match best {
                None => a.clone(),
                Some(b) => {
                    if crate::exec::compare(a, &b)? == Some(std::cmp::Ordering::Less) {
                        a.clone()
                    } else {
                        b
                    }
                }
            });
        }
        Ok(best.unwrap_or(Value::Null))
    });

    // extract(epoch from ts) is spelled extract_epoch(ts) in our dialect.
    db.register_scalar("extract_epoch", |_db, args| match args {
        [Value::Timestamp(t)] => Ok(Value::Int(*t)),
        [Value::Interval(t)] => Ok(Value::Int(*t)),
        [Value::Null] => Ok(Value::Null),
        _ => Err(SqlError::Type(
            "extract_epoch() takes a timestamp or interval".into(),
        )),
    });
}

/// Register the built-in set-returning functions.
pub fn register_builtin_table_fns(db: &Database) {
    db.register_table_fn("generate_series", |_db, args| {
        let mut q = QueryResult::new(vec!["generate_series".into()]);
        match args {
            [Value::Int(a), Value::Int(b)] => {
                for v in *a..=*b {
                    q.rows.push(vec![Value::Int(v)]);
                }
            }
            [Value::Int(a), Value::Int(b), Value::Int(step)] => {
                if *step == 0 {
                    return Err(SqlError::Execution(
                        "generate_series step cannot be zero".into(),
                    ));
                }
                let mut v = *a;
                while (*step > 0 && v <= *b) || (*step < 0 && v >= *b) {
                    q.rows.push(vec![Value::Int(v)]);
                    v += step;
                }
            }
            [Value::Timestamp(a), Value::Timestamp(b), Value::Interval(step)] => {
                if *step <= 0 {
                    return Err(SqlError::Execution(
                        "generate_series interval must be positive".into(),
                    ));
                }
                let mut t = *a;
                while t <= *b {
                    q.rows.push(vec![Value::Timestamp(t)]);
                    t += step;
                }
            }
            _ => {
                return Err(SqlError::Type(
                    "generate_series expects (int, int[, int]) or \
                     (timestamp, timestamp, interval)"
                        .into(),
                ))
            }
        }
        Ok(q)
    });
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::value::Value;

    fn db() -> Database {
        Database::new()
    }

    #[test]
    fn scalar_math_functions() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT abs(-4)"), Value::Int(4));
        assert_eq!(one("SELECT abs(-4.5)"), Value::Float(4.5));
        assert_eq!(one("SELECT sqrt(9.0)"), Value::Float(3.0));
        assert_eq!(one("SELECT round(2.567, 2)"), Value::Float(2.57));
        assert_eq!(one("SELECT power(2, 10)"), Value::Float(1024.0));
        assert_eq!(one("SELECT ceiling(1.2)"), Value::Float(2.0));
        assert_eq!(one("SELECT floor(1.8)"), Value::Float(1.0));
    }

    #[test]
    fn null_handling() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT coalesce(NULL, NULL, 3)"), Value::Int(3));
        assert_eq!(one("SELECT coalesce(NULL)"), Value::Null);
        assert_eq!(one("SELECT nullif(1, 1)"), Value::Null);
        assert_eq!(one("SELECT nullif(1, 2)"), Value::Int(1));
        assert_eq!(one("SELECT abs(NULL)"), Value::Null);
    }

    #[test]
    fn text_functions() {
        let d = db();
        let one = |sql: &str| d.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT lower('ABC')"), Value::Text("abc".into()));
        assert_eq!(one("SELECT upper('abc')"), Value::Text("ABC".into()));
        assert_eq!(one("SELECT length('hello')"), Value::Int(5));
        assert_eq!(one("SELECT greatest(1, 5, 3)"), Value::Int(5));
        assert_eq!(one("SELECT least(2, NULL, 1)"), Value::Int(1));
    }

    #[test]
    fn generate_series_ints() {
        let d = db();
        let q = d.execute("SELECT * FROM generate_series(1, 5)").unwrap();
        assert_eq!(q.len(), 5);
        let q = d
            .execute("SELECT * FROM generate_series(10, 1, -3)")
            .unwrap();
        assert_eq!(q.len(), 4);
        assert!(d.execute("SELECT * FROM generate_series(1, 5, 0)").is_err());
    }

    #[test]
    fn generate_series_timestamps() {
        let d = db();
        let q = d
            .execute(
                "SELECT * FROM generate_series(timestamp '2015-01-01', \
                 timestamp '2015-01-02', interval '1 hour') AS time",
            )
            .unwrap();
        assert_eq!(q.len(), 25);
        assert_eq!(q.columns, vec!["time"]);
    }

    #[test]
    fn extract_epoch() {
        let d = db();
        let v = d
            .execute("SELECT extract_epoch(timestamp '1970-01-01 01:00')")
            .unwrap()
            .scalar()
            .unwrap()
            .clone();
        assert_eq!(v, Value::Int(3600));
    }
}
