//! Ordered secondary indexes: B-tree-style maps from a column key to the
//! positions of the row versions carrying that key.
//!
//! With sharded version storage, each table index is split into one
//! `SecondaryIndex` **per shard**, keyed by arena-local positions and
//! maintained under that shard's lock. An index slice covers **every
//! physical version** in its shard's arena — committed, pending and dead
//! alike — because probes are always re-checked against the reader's
//! MVCC [`Snapshot`](crate::table::Snapshot) and its full WHERE clause.
//! That keeps maintenance purely positional *per shard*: begin/end stamp
//! changes (commit, rollback, delete) never touch the index; only
//! operations that add, move or rewrite payloads in that shard do.
//!
//! Probe results are therefore a *candidate superset* of the matching
//! rows, returned in ascending local-position order; the table layer
//! maps them to rids and concatenates shard results, which preserves
//! ascending rid order, so the executor's visibility-checked re-scan
//! produces byte-identical output to a sequential scan of the same
//! snapshot.

use std::collections::BTreeMap;

use crate::error::{Result, SqlError};
use crate::value::{DataType, Value};

/// Monotone total-order encoding of an `f64`: preserves `<` on all
/// non-NaN values, canonicalizes `-0.0` to `0.0`, and maps every NaN to
/// one canonical key that sorts above `+inf`.
fn f64_bits(f: f64) -> u64 {
    let f = if f == 0.0 {
        0.0
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    };
    let b = f.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The canonical NaN key — the greatest [`OrdKey::Num`] value.
fn nan_key() -> OrdKey {
    OrdKey::Num(f64_bits(f64::NAN))
}

/// A totally ordered index key. One index only ever holds one variant
/// (the column's key space), so the cross-variant ordering is arbitrary.
/// Ints and floats share [`OrdKey::Num`]: `i64 → f64` is weakly monotone,
/// so range probes stay supersets even where the cast loses precision —
/// the executor's exact re-check (`compare`) filters the collisions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum OrdKey {
    Bool(bool),
    /// Monotone bit-encoding of the value as `f64` (see [`f64_bits`]).
    Num(u64),
    Text(String),
    Time(i64),
    Ivl(i64),
}

/// Which [`OrdKey`] variant a column's values map into, fixed by its
/// declared type. `Variant` columns have no key space (values keep their
/// original types, so one column can mix incomparable variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KeySpace {
    Bool,
    Num,
    Text,
    Time,
    Ivl,
}

impl KeySpace {
    /// The key space of a column type; `None` for `variant`.
    pub(crate) fn of(dtype: DataType) -> Option<KeySpace> {
        match dtype {
            DataType::Bool => Some(KeySpace::Bool),
            DataType::Int | DataType::Float => Some(KeySpace::Num),
            DataType::Text => Some(KeySpace::Text),
            DataType::Timestamp => Some(KeySpace::Time),
            DataType::Interval => Some(KeySpace::Ivl),
            DataType::Variant => None,
        }
    }
}

/// Key of a **stored** value (already coerced to the column type).
/// `None` for NULL — NULLs are never indexed.
pub(crate) fn key_of(v: &Value) -> Option<OrdKey> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(OrdKey::Bool(*b)),
        Value::Int(i) => Some(OrdKey::Num(f64_bits(*i as f64))),
        Value::Float(f) => Some(OrdKey::Num(f64_bits(*f))),
        Value::Text(s) => Some(OrdKey::Text(s.clone())),
        Value::Timestamp(t) => Some(OrdKey::Time(*t)),
        Value::Interval(i) => Some(OrdKey::Ivl(*i)),
    }
}

/// Map a **probe bound** value into a column's key space. `None` means
/// the bound cannot be expressed as a key of this space (mismatched
/// type, unparseable timestamp text, NaN bound) — the caller must fall
/// back to a full scan so per-row comparison errors surface exactly as
/// a sequential scan would raise them.
fn bound_key(space: KeySpace, v: &Value) -> Option<OrdKey> {
    match (space, v) {
        (KeySpace::Num, Value::Int(i)) => Some(OrdKey::Num(f64_bits(*i as f64))),
        (KeySpace::Num, Value::Float(f)) if !f.is_nan() => Some(OrdKey::Num(f64_bits(*f))),
        (KeySpace::Text, Value::Text(s)) => Some(OrdKey::Text(s.clone())),
        (KeySpace::Time, Value::Timestamp(t)) => Some(OrdKey::Time(*t)),
        // `timestamp <op> text` parses the text (see `exec::compare`).
        (KeySpace::Time, Value::Text(s)) => crate::value::parse_timestamp(s).ok().map(OrdKey::Time),
        (KeySpace::Bool, Value::Bool(b)) => Some(OrdKey::Bool(*b)),
        (KeySpace::Ivl, Value::Interval(i)) => Some(OrdKey::Ivl(*i)),
        _ => None,
    }
}

/// An ordered secondary index over one column — the per-shard slice.
/// Name and uniqueness live in the table-level `IndexMeta` descriptor;
/// each shard's slice only needs the column it maintains.
#[derive(Debug, Clone, Default)]
pub(crate) struct SecondaryIndex {
    /// Indexed column's ordinal in the table schema.
    pub(crate) column: usize,
    /// Key → ascending version positions holding that key.
    map: BTreeMap<OrdKey, Vec<usize>>,
}

impl SecondaryIndex {
    pub(crate) fn new(column: usize) -> SecondaryIndex {
        SecondaryIndex {
            column,
            map: BTreeMap::new(),
        }
    }

    /// Number of distinct keys (for introspection/tests).
    #[cfg(test)]
    pub(crate) fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Add a freshly appended version. `pos` is the end of the heap, so
    /// pushing keeps every per-key vector sorted.
    pub(crate) fn insert(&mut self, pos: usize, value: &Value) {
        if let Some(k) = key_of(value) {
            self.map.entry(k).or_default().push(pos);
        }
    }

    /// Move a version between keys after its payload was overwritten in
    /// place. The position re-inserts in sorted order.
    pub(crate) fn reindex(&mut self, pos: usize, old: &Value, new: &Value) {
        let (ok, nk) = (key_of(old), key_of(new));
        if ok == nk {
            return;
        }
        if let Some(k) = ok {
            if let Some(v) = self.map.get_mut(&k) {
                if let Ok(i) = v.binary_search(&pos) {
                    v.remove(i);
                }
                if v.is_empty() {
                    self.map.remove(&k);
                }
            }
        }
        if let Some(k) = nk {
            let v = self.map.entry(k).or_default();
            let i = v.binary_search(&pos).unwrap_err();
            v.insert(i, pos);
        }
    }

    /// Drop every position at or past `len` — tail truncation.
    #[cfg(test)]
    pub(crate) fn truncate(&mut self, len: usize) {
        self.map.retain(|_, v| {
            v.retain(|&p| p < len);
            !v.is_empty()
        });
    }

    /// Remove physically deleted positions and renumber the survivors:
    /// each surviving position drops by the number of removed positions
    /// below it. `removed` is sorted ascending.
    pub(crate) fn remove_renumber(&mut self, removed: &[usize]) {
        if removed.is_empty() {
            return;
        }
        self.map.retain(|_, v| {
            v.retain_mut(|p| match removed.binary_search(p) {
                Ok(_) => false,
                Err(rank) => {
                    *p -= rank;
                    true
                }
            });
            !v.is_empty()
        });
    }

    /// Candidate positions for a point/range probe, ascending. `lo`/`hi`
    /// are inclusive bounds (strict predicates widen to inclusive — the
    /// WHERE re-check restores exactness); equality passes the same value
    /// as both. Returns:
    /// - `None`: the probe cannot narrow (unmappable bound) — scan all.
    /// - `Some(vec)`: superset of matching positions. For numeric key
    ///   spaces the NaN bucket is always included so the re-check raises
    ///   the same "NaN comparison" error a sequential scan would.
    pub(crate) fn probe(
        &self,
        space: KeySpace,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<usize>> {
        // A NULL bound makes the sargable conjunct never-true: no row
        // can match, and comparison against NULL never errors.
        if matches!(lo, Some(Value::Null)) || matches!(hi, Some(Value::Null)) {
            return Some(Vec::new());
        }
        let lo_key = match lo {
            None => None,
            Some(v) => Some(bound_key(space, v)?),
        };
        let hi_key = match hi {
            None => None,
            Some(v) => Some(bound_key(space, v)?),
        };
        use std::ops::Bound;
        let range = (
            lo_key.map_or(Bound::Unbounded, Bound::Included),
            hi_key.clone().map_or(Bound::Unbounded, Bound::Included),
        );
        let mut out: Vec<usize> = self
            .map
            .range(range)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        // NaN sorts above every bounded range: pull its bucket in
        // explicitly whenever an upper bound would exclude it.
        if space == KeySpace::Num && hi_key.is_some() {
            if let Some(v) = self.map.get(&nan_key()) {
                out.extend(v.iter().copied());
            }
        }
        out.sort_unstable();
        Some(out)
    }

    /// Positions currently holding `key` (unique-violation checks).
    pub(crate) fn positions_of(&self, key: &OrdKey) -> &[usize] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Rebuild from scratch over a version heap (rollback of DROP INDEX,
    /// CREATE INDEX itself).
    pub(crate) fn rebuild<'a>(&mut self, rows: impl Iterator<Item = &'a [Value]>) {
        self.map.clear();
        for (pos, row) in rows.enumerate() {
            self.insert(pos, &row[self.column]);
        }
    }
}

/// PostgreSQL's duplicate-key wording.
pub(crate) fn unique_violation(index: &str) -> SqlError {
    SqlError::Constraint(format!(
        "duplicate key value violates unique constraint \"{index}\""
    ))
}

/// Reject `CREATE INDEX` on column types without a key space.
pub(crate) fn check_indexable(dtype: DataType, column: &str) -> Result<KeySpace> {
    KeySpace::of(dtype).ok_or_else(|| {
        SqlError::Type(format!(
            "cannot create an index on variant column \"{column}\""
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx_over(vals: &[Value]) -> SecondaryIndex {
        let mut ix = SecondaryIndex::new(0);
        for (p, v) in vals.iter().enumerate() {
            ix.insert(p, v);
        }
        ix
    }

    #[test]
    fn point_probe_returns_matches_and_nan_bucket() {
        let ix = idx_over(&[
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(f64::NAN),
            Value::Float(2.0),
            Value::Null,
        ]);
        let got = ix
            .probe(
                KeySpace::Num,
                Some(&Value::Float(2.0)),
                Some(&Value::Float(2.0)),
            )
            .unwrap();
        assert_eq!(got, vec![1, 2, 3], "matches plus the NaN bucket, sorted");
        // Unbounded-above ranges already include NaN.
        let got = ix
            .probe(KeySpace::Num, Some(&Value::Float(1.5)), None)
            .unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn int_and_float_share_the_num_space() {
        let ix = idx_over(&[Value::Int(1), Value::Int(5), Value::Int(9)]);
        let got = ix
            .probe(
                KeySpace::Num,
                Some(&Value::Float(2.5)),
                Some(&Value::Int(9)),
            )
            .unwrap();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn unmappable_bound_falls_back() {
        let ix = idx_over(&[Value::Int(1)]);
        assert!(ix
            .probe(KeySpace::Num, Some(&Value::Text("x".into())), None)
            .is_none());
        // NaN bound: every comparison errors — cannot narrow.
        assert!(ix
            .probe(
                KeySpace::Num,
                Some(&Value::Float(f64::NAN)),
                Some(&Value::Float(f64::NAN))
            )
            .is_none());
        // NULL bound: conjunct is never true.
        assert_eq!(
            ix.probe(KeySpace::Num, Some(&Value::Null), None).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn timestamp_text_bounds_parse() {
        let t = crate::value::parse_timestamp("2015-02-01 00:00").unwrap();
        let ix = idx_over(&[Value::Timestamp(t), Value::Timestamp(t + 3600)]);
        let got = ix
            .probe(
                KeySpace::Time,
                Some(&Value::Text("2015-02-01 00:30".into())),
                None,
            )
            .unwrap();
        assert_eq!(got, vec![1]);
        assert!(ix
            .probe(
                KeySpace::Time,
                Some(&Value::Text("not a time".into())),
                None
            )
            .is_none());
    }

    #[test]
    fn maintenance_truncate_remove_reindex() {
        let mut ix = idx_over(&[Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(2)]);
        ix.truncate(3); // drop position 3
        let all = ix.probe(KeySpace::Num, None, None).unwrap();
        assert_eq!(all, vec![0, 1, 2]);
        // Remove position 1: positions 2 renumbers to 1.
        ix.remove_renumber(&[1]);
        assert_eq!(ix.probe(KeySpace::Num, None, None).unwrap(), vec![0, 1]);
        assert_eq!(
            ix.probe(KeySpace::Num, Some(&Value::Int(3)), Some(&Value::Int(3)))
                .unwrap(),
            vec![1]
        );
        // Overwrite position 0: 1 → 9.
        ix.reindex(0, &Value::Int(1), &Value::Int(9));
        assert_eq!(
            ix.probe(KeySpace::Num, Some(&Value::Int(9)), Some(&Value::Int(9)))
                .unwrap(),
            vec![0]
        );
        assert_eq!(ix.key_count(), 2);
    }
}
