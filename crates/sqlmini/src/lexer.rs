//! SQL tokenizer.
//!
//! Identifiers are case-insensitive (normalized to lower case); string
//! literals are single-quoted with `''` escaping, as in PostgreSQL.

use crate::error::{Result, SqlError};

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, normalized to lower case.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `$n` bind-parameter placeholder (1-based, as in PostgreSQL).
    Param(usize),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||`
    Concat,
    /// `::`
    DoubleColon,
}

/// Tokenize a SQL string.
pub fn lex(sql: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();

    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    // line comment
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    out.push(Tok::Minus);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(other) => s.push(other),
                        None => return Err(SqlError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Tok::Str(s));
            }
            '"' => {
                // Quoted identifier — preserved but still lower-cased for
                // simplicity (our catalogue uses conventional names).
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(other) => s.push(other),
                        None => {
                            return Err(SqlError::Parse("unterminated quoted identifier".into()))
                        }
                    }
                }
                out.push(Tok::Ident(s.to_ascii_lowercase()));
            }
            '0'..='9' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else if c == '.' && !is_float {
                        // Lookahead: `1.5` is a float, `1.x` is int-dot-ident.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            text.push('.');
                            chars.next();
                        } else {
                            break;
                        }
                    } else if (c == 'e' || c == 'E') && !text.is_empty() {
                        let mut ahead = chars.clone();
                        ahead.next();
                        let next = ahead.peek().copied();
                        if next.is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-') {
                            is_float = true;
                            text.push('e');
                            chars.next();
                            if let Some(&sign @ ('+' | '-')) = chars.peek() {
                                text.push(sign);
                                chars.next();
                            }
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| SqlError::Parse(format!("bad number '{text}'")))?;
                    out.push(Tok::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| SqlError::Parse(format!("bad number '{text}'")))?;
                    out.push(Tok::Int(v));
                }
            }
            '$' => {
                chars.next();
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        digits.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if digits.is_empty() {
                    return Err(SqlError::Parse(
                        "expected a parameter number after '$'".into(),
                    ));
                }
                let n: usize = digits
                    .parse()
                    .map_err(|_| SqlError::Parse(format!("bad parameter number '${digits}'")))?;
                out.push(Tok::Param(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        name.push(c.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(name));
            }
            _ => {
                chars.next();
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '.' => Tok::Dot,
                    '*' => Tok::Star,
                    '+' => Tok::Plus,
                    '/' => Tok::Slash,
                    '=' => Tok::Eq,
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Ne
                        } else {
                            return Err(SqlError::Parse("unexpected '!'".into()));
                        }
                    }
                    '<' => match chars.peek() {
                        Some('=') => {
                            chars.next();
                            Tok::Le
                        }
                        Some('>') => {
                            chars.next();
                            Tok::Ne
                        }
                        _ => Tok::Lt,
                    },
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            chars.next();
                            Tok::Concat
                        } else {
                            return Err(SqlError::Parse("unexpected '|'".into()));
                        }
                    }
                    ':' => {
                        if chars.peek() == Some(&':') {
                            chars.next();
                            Tok::DoubleColon
                        } else {
                            return Err(SqlError::Parse("unexpected ':'".into()));
                        }
                    }
                    other => {
                        return Err(SqlError::Parse(format!("unexpected character '{other}'")))
                    }
                };
                out.push(tok);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT * FROM measurements WHERE x >= 1.5").unwrap();
        assert_eq!(toks[0], Tok::Ident("select".into()));
        assert_eq!(toks[1], Tok::Star);
        assert_eq!(toks[5], Tok::Ident("x".into()));
        assert_eq!(toks[6], Tok::Ge);
        assert_eq!(toks[7], Tok::Float(1.5));
    }

    #[test]
    fn string_escaping() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into())]);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(lex("42").unwrap(), vec![Tok::Int(42)]);
        assert_eq!(lex("4.5").unwrap(), vec![Tok::Float(4.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Tok::Float(1000.0)]);
        assert_eq!(lex("1e-6").unwrap(), vec![Tok::Float(1e-6)]);
    }

    #[test]
    fn double_colon_and_concat() {
        assert_eq!(
            lex("id::text || 'x'").unwrap(),
            vec![
                Tok::Ident("id".into()),
                Tok::DoubleColon,
                Tok::Ident("text".into()),
                Tok::Concat,
                Tok::Str("x".into()),
            ]
        );
        assert!(lex("a | b").is_err());
        assert!(lex("a : b").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("select".into()),
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2)
            ]
        );
    }

    #[test]
    fn bind_parameters() {
        assert_eq!(
            lex("WHERE x > $1 AND y < $23").unwrap(),
            vec![
                Tok::Ident("where".into()),
                Tok::Ident("x".into()),
                Tok::Gt,
                Tok::Param(1),
                Tok::Ident("and".into()),
                Tok::Ident("y".into()),
                Tok::Lt,
                Tok::Param(23),
            ]
        );
        // `$` inside an identifier stays part of the identifier; a bare `$`
        // is an error.
        assert_eq!(lex("a$1").unwrap(), vec![Tok::Ident("a$1".into())]);
        assert!(lex("$ 1").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            lex("\"ModelInstance\"").unwrap(),
            vec![Tok::Ident("modelinstance".into())]
        );
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn dotted_qualifier_vs_float() {
        let toks = lex("f.varType").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("f".into()),
                Tok::Dot,
                Tok::Ident("vartype".into())
            ]
        );
    }
}
