//! # pgfmu-sqlmini — an in-memory relational DBMS substrate
//!
//! This crate stands in for PostgreSQL in the pgFMU reproduction. pgFMU's
//! contribution is a set of SQL-invocable UDFs plus a model catalogue; what
//! it needs from the DBMS is:
//!
//! * SQL query execution over ordinary tables (`SELECT` with projections,
//!   cross joins, WHERE/ORDER BY/LIMIT, aggregates; `INSERT … VALUES` and
//!   `INSERT … SELECT`; `UPDATE`; `DELETE`; `CREATE`/`DROP TABLE`);
//! * **scalar and set-returning user-defined functions** that can re-enter
//!   the database — `fmu_parest` executes the user's `input_sql`, and
//!   `fmu_simulate` appears in `FROM` clauses, including the paper's
//!   `LATERAL`-join multi-instance pattern;
//! * a PostgreSQL-flavoured type system including `timestamp`, `interval`
//!   and the `variant` extension type the model catalogue relies on;
//! * a statement cache implementing the paper's "prepared SQL queries"
//!   optimization (§7), bounded by an LRU policy.
//!
//! ## Prepared statements, binds and typed decoding
//!
//! The client surface mirrors the PostgreSQL extended protocol:
//! [`Database::prepare`] parses once (with statement-cache reuse) and
//! returns a [`Statement`]; `$1..$n` placeholders are bound per execution
//! with [`Statement::query`], streamed with [`Statement::query_rows`]
//! (see [`Rows`]), or decoded into Rust types with
//! [`Statement::query_as`] via the [`FromRow`]/[`FromValue`] traits.
//! Binding sidesteps literal quoting entirely and repeated executions
//! never re-parse:
//!
//! ```
//! use pgfmu_sqlmini::{params, Database};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE measurements (ts timestamp, x float)").unwrap();
//! let insert = db.prepare("INSERT INTO measurements VALUES ($1, $2)").unwrap();
//! insert.query(params!["2015-02-01 00:00", 20.75]).unwrap();
//! insert.query(params!["2015-02-01 01:00", 23.25]).unwrap();
//! let avg: Vec<Option<f64>> = db
//!     .query_as("SELECT avg(x) FROM measurements WHERE x < $1", params![30.0])
//!     .unwrap();
//! assert_eq!(avg, vec![Some(22.0)]);
//! ```
//!
//! UDFs are declared through the typed [`Database::udf`] builder (argument
//! signatures, central coercion/arity errors — see [`udf::UdfBuilder`]),
//! and engine counters are queryable in SQL via `pgfmu_stats()`.

pub mod ast;
pub mod db;
pub mod decode;
pub mod error;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod udf;
pub mod value;

pub use db::{Database, Statement, DEFAULT_STMT_CACHE_CAPACITY};
pub use decode::{FromRow, FromValue};
pub use error::{Result, SqlError};
pub use exec::Rows;
pub use functions::{ScalarFn, TableFn};
pub use table::{Column, QueryResult, Row, Schema, Table};
pub use udf::{ArgKind, Args, UdfBuilder};
pub use value::{
    format_timestamp, parse_interval, parse_timestamp, timestamp_from_parts, DataType, Value,
};

/// Build a `&[Value]` bind-parameter slice from Rust values:
/// `params!["HP1Instance1", 20.75, None::<f64>]`. Each element goes through
/// [`Value::from`], so `Option<T>` encodes SQL NULL.
#[macro_export]
macro_rules! params {
    () => { &[] as &[$crate::Value] };
    ($($v:expr),+ $(,)?) => { &[$($crate::Value::from($v)),+][..] };
}
