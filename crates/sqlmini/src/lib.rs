//! # pgfmu-sqlmini — an in-memory relational DBMS substrate
//!
//! This crate stands in for PostgreSQL in the pgFMU reproduction. pgFMU's
//! contribution is a set of SQL-invocable UDFs plus a model catalogue; what
//! it needs from the DBMS is:
//!
//! * SQL query execution over ordinary tables (`SELECT` with projections,
//!   cross joins, WHERE/ORDER BY/LIMIT, aggregates; `INSERT … VALUES` and
//!   `INSERT … SELECT`; `UPDATE`; `DELETE`; `CREATE`/`DROP TABLE`);
//! * **scalar and set-returning user-defined functions** that can re-enter
//!   the database — `fmu_parest` executes the user's `input_sql`, and
//!   `fmu_simulate` appears in `FROM` clauses, including the paper's
//!   `LATERAL`-join multi-instance pattern;
//! * a PostgreSQL-flavoured type system including `timestamp`, `interval`
//!   and the `variant` extension type the model catalogue relies on;
//! * a statement cache implementing the paper's "prepared SQL queries"
//!   optimization (§7).
//!
//! ```
//! use pgfmu_sqlmini::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE measurements (ts timestamp, x float)").unwrap();
//! db.execute("INSERT INTO measurements VALUES ('2015-02-01 00:00', 20.75)").unwrap();
//! let q = db.execute("SELECT avg(x) FROM measurements").unwrap();
//! assert_eq!(q.rows[0][0].as_f64().unwrap(), 20.75);
//! ```

pub mod ast;
pub mod db;
pub mod error;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod value;

pub use db::Database;
pub use error::{Result, SqlError};
pub use functions::{ScalarFn, TableFn};
pub use table::{Column, QueryResult, Row, Schema, Table};
pub use value::{
    format_timestamp, parse_interval, parse_timestamp, timestamp_from_parts, DataType, Value,
};
