//! # pgfmu-sqlmini — an in-memory relational DBMS substrate
//!
//! This crate stands in for PostgreSQL in the pgFMU reproduction. pgFMU's
//! contribution is a set of SQL-invocable UDFs plus a model catalogue; what
//! it needs from the DBMS is:
//!
//! * SQL query execution over ordinary tables (`SELECT [DISTINCT]` with
//!   projections, cross joins, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT,
//!   hash-grouped aggregates; `INSERT … VALUES` and a streaming
//!   `INSERT … SELECT`; `UPDATE`; `DELETE`; `CREATE`/`DROP TABLE`) —
//!   compiled once into a shared physical plan, executed many times,
//!   with secondary indexes (`CREATE [UNIQUE] INDEX`) feeding a
//!   statistics-driven cost-based planner (`ANALYZE`, index point/range
//!   scans, hash equi-joins, `EXPLAIN`);
//! * **scalar and set-returning user-defined functions** that can re-enter
//!   the database — `fmu_parest` executes the user's `input_sql`, and
//!   `fmu_simulate` appears in `FROM` clauses, including the paper's
//!   `LATERAL`-join multi-instance pattern;
//! * a PostgreSQL-flavoured type system including `timestamp`, `interval`
//!   and the `variant` extension type the model catalogue relies on;
//! * a statement cache implementing the paper's "prepared SQL queries"
//!   optimization (§7), bounded by an LRU policy.
//!
//! ## Prepared statements, binds and typed decoding
//!
//! The client surface mirrors the PostgreSQL extended protocol:
//! [`Database::prepare`] parses once (with statement-cache reuse) and
//! returns a [`Statement`]; `$1..$n` placeholders are bound per execution
//! with [`Statement::query`], streamed with [`Statement::query_rows`]
//! (see [`Rows`]), or decoded into Rust types with
//! [`Statement::query_as`] via the [`FromRow`]/[`FromValue`] traits.
//! Binding sidesteps literal quoting entirely and repeated executions
//! never re-parse:
//!
//! ```
//! use pgfmu_sqlmini::{params, Database};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE measurements (ts timestamp, x float)").unwrap();
//! let insert = db.prepare("INSERT INTO measurements VALUES ($1, $2)").unwrap();
//! insert.query(params!["2015-02-01 00:00", 20.75]).unwrap();
//! insert.query(params!["2015-02-01 01:00", 23.25]).unwrap();
//! let avg: Vec<Option<f64>> = db
//!     .query_as("SELECT avg(x) FROM measurements WHERE x < $1", params![30.0])
//!     .unwrap();
//! assert_eq!(avg, vec![Some(22.0)]);
//! ```
//!
//! ## Grouped aggregation
//!
//! `GROUP BY` / `HAVING` run as a hash-grouping operator over the joined
//! input: `count`/`sum`/`avg`/`min`/`max` evaluate per group, grouping
//! keys may be arbitrary expressions (or select-list ordinals), and
//! placeholders bind inside grouping and `HAVING` clauses. Ungrouped
//! column references and aggregates in `WHERE` fail with PostgreSQL's
//! wording:
//!
//! ```
//! use pgfmu_sqlmini::{params, Database};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE m (site text, x float)").unwrap();
//! db.execute("INSERT INTO m VALUES ('a', 1.5), ('a', 2.5), ('b', 9.0)").unwrap();
//! let rows: Vec<(String, f64)> = db
//!     .query_as(
//!         "SELECT site, sum(x) FROM m GROUP BY site HAVING sum(x) > $1 ORDER BY site",
//!         params![3.0],
//!     )
//!     .unwrap();
//! assert_eq!(rows, vec![("a".into(), 4.0), ("b".into(), 9.0)]);
//! let err = db.execute("SELECT site, x, sum(x) FROM m GROUP BY site").unwrap_err();
//! assert_eq!(
//!     err.to_string(),
//!     "column \"x\" must appear in the GROUP BY clause or be used in an aggregate function",
//! );
//! ```
//!
//! ## UDFs and engine observability
//!
//! UDFs are declared through the typed [`Database::udf`] builder (argument
//! signatures, central coercion/arity errors — see [`udf::UdfBuilder`]),
//! and engine counters are queryable in SQL via the `pgfmu_stats()`
//! set-returning function. It yields one `(stat text, value bigint)` row
//! per counter: `parses` (statements parsed), `cache_hits` (statement-cache
//! hits), `plans_built` / `plan_cache_hits` (physical plans compiled vs.
//! executions reusing a statement's shared plan), `agg_evals` (one per
//! group per distinct aggregate call — the grouping operator's
//! memoization at work), `index_scans` / `seq_scans` / `hash_joins` /
//! `analyze_runs` (which access paths the cost-based planner chose, and
//! how often statistics were collected — `EXPLAIN <stmt>` shows the
//! choice for one statement), `stmt_cache_size` / `stmt_cache_capacity`
//! (current statement-cache population and bound), and one `calls.<name>`
//! row per typed UDF that has been invoked:
//!
//! ```
//! use pgfmu_sqlmini::Database;
//!
//! let db = Database::new();
//! db.execute("SELECT sqrt(4.0)").unwrap();
//! let stats: Vec<(String, i64)> = db
//!     .query_as("SELECT stat, value FROM pgfmu_stats() ORDER BY stat", &[])
//!     .unwrap();
//! assert!(stats.iter().any(|(s, n)| s == "parses" && *n >= 1));
//! assert!(stats.iter().any(|(s, n)| s == "calls.sqrt" && *n == 1));
//! // Grouped SQL works over the stats relation like any other:
//! let n: Vec<i64> = db
//!     .query_as("SELECT count(*) FROM pgfmu_stats() GROUP BY value >= 0", &[])
//!     .unwrap();
//! assert!(n[0] >= 4);
//! ```

pub mod ast;
pub(crate) mod batch;
pub(crate) mod cost;
pub mod db;
pub mod decode;
pub mod error;
pub mod exec;
pub mod functions;
pub(crate) mod index;
pub mod lexer;
pub mod parser;
pub(crate) mod plan;
pub(crate) mod stats;
pub mod table;
pub mod udf;
pub mod value;

pub use db::{Database, Statement, DEFAULT_STMT_CACHE_CAPACITY};
pub use decode::{FromRow, FromValue, NamedRow, NamedRows, OwnedNamedRow};
pub use error::{Result, SqlError};
pub use exec::Rows;
pub use functions::{ScalarFn, TableFn};
pub use table::{Column, QueryResult, Row, Schema, Table};
pub use udf::{ArgKind, Args, UdfBuilder};
pub use value::{
    format_timestamp, parse_interval, parse_timestamp, timestamp_from_parts, DataType, Value,
};

/// Build a `&[Value]` bind-parameter slice from Rust values:
/// `params!["HP1Instance1", 20.75, None::<f64>]`. Each element goes through
/// [`Value::from`], so `Option<T>` encodes SQL NULL.
#[macro_export]
macro_rules! params {
    () => { &[] as &[$crate::Value] };
    ($($v:expr),+ $(,)?) => { &[$($crate::Value::from($v)),+][..] };
}
