//! Recursive-descent SQL parser.
//!
//! Supported statements: `SELECT` (projection, FROM with tables,
//! lateral set-returning functions and `[INNER] JOIN … ON`, WHERE,
//! GROUP BY, HAVING, ORDER BY, LIMIT), `INSERT … VALUES/SELECT`,
//! `UPDATE`, `DELETE`, `CREATE TABLE`, `DROP TABLE`,
//! `CREATE [UNIQUE] INDEX`, `DROP INDEX`, `ANALYZE [table]` and
//! `EXPLAIN <stmt>`.
//!
//! Expression precedence (low→high): `OR`, `AND`, `NOT`, comparison /
//! `IN` / `IS NULL`, `||`, additive, multiplicative, unary minus,
//! `::` casts, primaries.

use crate::ast::{BinOp, Expr, FromItem, InsertSource, SelectItem, SelectStmt, Stmt, UnOp};
use crate::error::{Result, SqlError};
use crate::lexer::{lex, Tok};
use crate::value::{DataType, Value};

/// Keywords that terminate a bare alias.
const RESERVED: [&str; 23] = [
    "select", "distinct", "from", "where", "order", "group", "having", "limit", "and", "or", "not",
    "in", "is", "as", "asc", "desc", "by", "lateral", "values", "set", "join", "on", "inner",
];

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {what}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {}, found {:?}",
                kw.to_uppercase(),
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(SqlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- statements --------------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.peek_kw("select") {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("insert") {
            return self.parse_insert();
        }
        if self.eat_kw("update") {
            return self.parse_update();
        }
        if self.eat_kw("delete") {
            return self.parse_delete();
        }
        if self.eat_kw("create") {
            return self.parse_create();
        }
        if self.eat_kw("drop") {
            return self.parse_drop();
        }
        if self.eat_kw("explain") {
            return Ok(Stmt::Explain(Box::new(self.parse_stmt()?)));
        }
        if self.eat_kw("analyze") {
            let table = match self.peek() {
                Some(Tok::Ident(name)) if !RESERVED.contains(&name.as_str()) => {
                    let t = name.clone();
                    self.pos += 1;
                    Some(t)
                }
                _ => None,
            };
            return Ok(Stmt::Analyze(table));
        }
        if self.eat_kw("begin") {
            self.eat_txn_noise();
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("start") {
            self.expect_kw("transaction")?;
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("commit") || self.eat_kw("end") {
            self.eat_txn_noise();
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("rollback") || self.eat_kw("abort") {
            self.eat_txn_noise();
            return Ok(Stmt::Rollback);
        }
        Err(SqlError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    /// The optional `TRANSACTION` / `WORK` noise word after BEGIN, COMMIT,
    /// END, ROLLBACK and ABORT.
    fn eat_txn_noise(&mut self) {
        let _ = self.eat_kw("transaction") || self.eat_kw("work");
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        let mut join_on = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_from_item()?);
            loop {
                if self.eat(&Tok::Comma) {
                    from.push(self.parse_from_item()?);
                    continue;
                }
                // `[INNER] JOIN item ON expr` — inner-join shorthand for a
                // comma join with the ON condition ANDed into WHERE.
                if self.eat_kw("inner") || self.peek_kw("join") {
                    self.expect_kw("join")?;
                    from.push(self.parse_from_item()?);
                    self.expect_kw("on")?;
                    join_on.push(self.parse_expr()?);
                    continue;
                }
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            join_on,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Some(Tok::Ident(name)), Some(Tok::Dot), Some(Tok::Star)) =
            (self.peek(), self.peek2(), self.tokens.get(self.pos + 2))
        {
            let q = name.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident("alias")?));
        }
        if let Some(Tok::Ident(name)) = self.peek() {
            if !RESERVED.contains(&name.as_str()) {
                let alias = name.clone();
                self.pos += 1;
                return Ok(Some(alias));
            }
        }
        Ok(None)
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        // LATERAL is accepted and implied for function items.
        self.eat_kw("lateral");
        let name = self.expect_ident("table or function name")?;
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "')' after function arguments")?;
            let alias = self.parse_alias()?;
            Ok(FromItem::Function { name, args, alias })
        } else {
            let alias = self.parse_alias()?;
            Ok(FromItem::Table { name, alias })
        }
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("into")?;
        let table = self.expect_ident("table name")?;
        let columns = if self.peek() == Some(&Tok::LParen)
            && !matches!(self.peek2(), Some(Tok::Ident(k)) if k == "select")
        {
            self.pos += 1;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident("column name")?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "')' after column list")?;
            Some(cols)
        } else {
            None
        };
        if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Tok::LParen, "'(' starting a VALUES row")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "')' ending a VALUES row")?;
                rows.push(row);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            Ok(Stmt::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            })
        } else if self.peek_kw("select") {
            let sel = self.parse_select()?;
            Ok(Stmt::Insert {
                table,
                columns,
                source: InsertSource::Select(Box::new(sel)),
            })
        } else {
            Err(SqlError::Parse("INSERT expects VALUES or SELECT".into()))
        }
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        let table = self.expect_ident("table name")?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            self.expect(&Tok::Eq, "'=' in SET")?;
            let e = self.parse_expr()?;
            sets.push((col, e));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("from")?;
        let table = self.expect_ident("table name")?;
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete {
            table,
            where_clause,
        })
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        let unique = self.eat_kw("unique");
        if unique || self.peek_kw("index") {
            self.expect_kw("index")?;
            let name = self.expect_ident("index name")?;
            self.expect_kw("on")?;
            let table = self.expect_ident("table name")?;
            self.expect(&Tok::LParen, "'(' before the indexed column")?;
            let column = self.expect_ident("column name")?;
            self.expect(&Tok::RParen, "')' after the indexed column")?;
            return Ok(Stmt::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident("table name")?;
        self.expect(&Tok::LParen, "'(' after table name")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            let mut ty = self.expect_ident("type name")?;
            // multi-word types: `double precision`
            if ty == "double" && self.eat_kw("precision") {
                ty = "double".into();
            }
            columns.push((col, DataType::parse(&ty)?));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "')' after column definitions")?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn parse_drop(&mut self) -> Result<Stmt> {
        if self.eat_kw("index") {
            let name = self.expect_ident("index name")?;
            return Ok(Stmt::DropIndex { name });
        }
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident("table name")?;
        Ok(Stmt::DropTable { name, if_exists })
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("and") {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.parse_not()?),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_concat()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN (…)
        let negated_in =
            if self.peek_kw("not") && matches!(self.peek2(), Some(Tok::Ident(k)) if k == "in") {
                self.pos += 2;
                true
            } else if self.eat_kw("in") {
                false
            } else {
                let op = match self.peek() {
                    Some(Tok::Eq) => Some(BinOp::Eq),
                    Some(Tok::Ne) => Some(BinOp::Ne),
                    Some(Tok::Lt) => Some(BinOp::Lt),
                    Some(Tok::Le) => Some(BinOp::Le),
                    Some(Tok::Gt) => Some(BinOp::Gt),
                    Some(Tok::Ge) => Some(BinOp::Ge),
                    _ => None,
                };
                if let Some(op) = op {
                    self.pos += 1;
                    let rhs = self.parse_concat()?;
                    return Ok(Expr::Binary {
                        op,
                        left: Box::new(lhs),
                        right: Box::new(rhs),
                    });
                }
                return Ok(lhs);
            };
        self.expect(&Tok::LParen, "'(' after IN")?;
        let mut list = Vec::new();
        loop {
            list.push(self.parse_expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "')' closing IN list")?;
        Ok(Expr::InList {
            expr: Box::new(lhs),
            list,
            negated: negated_in,
        })
    }

    fn parse_concat(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        while self.eat(&Tok::Concat) {
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary {
                op: BinOp::Concat,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.parse_unary()?),
            })
        } else if self.eat(&Tok::Plus) {
            self.parse_unary()
        } else {
            self.parse_postfix()
        }
    }

    /// Postfix `::type` casts (left-associative, tightest binding).
    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        while self.eat(&Tok::DoubleColon) {
            let mut ty = self.expect_ident("type name after '::'")?;
            if ty == "double" && self.eat_kw("precision") {
                ty = "double".into();
            }
            e = Expr::Cast {
                expr: Box::new(e),
                ty: DataType::parse(&ty)?,
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Tok::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Tok::Param(n)) => {
                if n == 0 {
                    return Err(SqlError::Parse("there is no parameter $0".into()));
                }
                Ok(Expr::Param(n))
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "null" => Ok(Expr::Literal(Value::Null)),
                "true" => Ok(Expr::Literal(Value::Bool(true))),
                "false" => Ok(Expr::Literal(Value::Bool(false))),
                "interval" => {
                    // `interval '1 hour'`
                    match self.bump() {
                        Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Interval(
                            crate::value::parse_interval(&s)?,
                        ))),
                        other => Err(SqlError::Parse(format!(
                            "INTERVAL expects a string literal, found {other:?}"
                        ))),
                    }
                }
                "timestamp" => match self.bump() {
                    Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Timestamp(
                        crate::value::parse_timestamp(&s)?,
                    ))),
                    other => Err(SqlError::Parse(format!(
                        "TIMESTAMP expects a string literal, found {other:?}"
                    ))),
                },
                _ => {
                    if self.peek() == Some(&Tok::LParen) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if self.eat(&Tok::Star) {
                            // count(*)
                            self.expect(&Tok::RParen, "')' after count(*)")?;
                            return Ok(Expr::Function {
                                name,
                                args,
                                distinct: false,
                            });
                        }
                        // `count(DISTINCT x)` — only aggregates accept it;
                        // the planner rejects it elsewhere.
                        let distinct = self.eat_kw("distinct");
                        if distinct && self.peek() == Some(&Tok::RParen) {
                            return Err(SqlError::Parse(
                                "DISTINCT in a function call requires an argument".into(),
                            ));
                        }
                        if self.peek() != Some(&Tok::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen, "')' after function arguments")?;
                        Ok(Expr::Function {
                            name,
                            args,
                            distinct,
                        })
                    } else if self.peek() == Some(&Tok::Dot) {
                        self.pos += 1;
                        let col = self.expect_ident("column after '.'")?;
                        Ok(Expr::Column {
                            table: Some(name),
                            name: col,
                        })
                    } else {
                        Ok(Expr::Column { table: None, name })
                    }
                }
            },
            other => Err(SqlError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_stmt()?;
    p.eat(&Tok::Semi);
    if p.peek().is_some() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10;").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from.len(), 1);
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].1);
                assert_eq!(sel.limit, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_wildcards() {
        let s = parse("SELECT *, f.* FROM t, fmu_variables('i') AS f").unwrap();
        if let Stmt::Select(sel) = s {
            assert_eq!(sel.items[0], SelectItem::Wildcard);
            assert_eq!(sel.items[1], SelectItem::QualifiedWildcard("f".into()));
            assert!(
                matches!(&sel.from[1], FromItem::Function { name, .. } if name == "fmu_variables")
            );
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_lateral_function() {
        let s = parse(
            "SELECT * FROM generate_series(1, 100) AS id, \
             LATERAL fmu_simulate('HP1Instance' || id::text, 'SELECT * FROM m') AS f",
        )
        .unwrap();
        if let Stmt::Select(sel) = s {
            assert_eq!(sel.from.len(), 2);
            match &sel.from[1] {
                FromItem::Function { name, args, alias } => {
                    assert_eq!(name, "fmu_simulate");
                    assert_eq!(args.len(), 2);
                    assert_eq!(alias.as_deref(), Some("f"));
                }
                other => panic!("{other:?}"),
            }
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_in_list_and_is_null() {
        let s = parse("SELECT * FROM t WHERE varName IN ('y', 'x') AND v IS NOT NULL").unwrap();
        if let Stmt::Select(sel) = s {
            let w = sel.where_clause.unwrap();
            assert!(matches!(w, Expr::Binary { op: BinOp::And, .. }));
        } else {
            panic!();
        }
        let s2 = parse("SELECT * FROM t WHERE x NOT IN (1, 2)").unwrap();
        if let Stmt::Select(sel) = s2 {
            assert!(matches!(
                sel.where_clause.unwrap(),
                Expr::InList { negated: true, .. }
            ));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_group_by_and_having() {
        let s = parse(
            "SELECT varname, sum(value) FROM sim GROUP BY varname, instanceid \
             HAVING sum(value) > $1 ORDER BY varname LIMIT 3",
        )
        .unwrap();
        if let Stmt::Select(sel) = s {
            assert_eq!(sel.group_by.len(), 2);
            assert!(matches!(
                &sel.group_by[0],
                Expr::Column { name, .. } if name == "varname"
            ));
            assert!(matches!(
                sel.having,
                Some(Expr::Binary { op: BinOp::Gt, .. })
            ));
            assert_eq!(sel.order_by.len(), 1);
            assert_eq!(sel.limit, Some(3));
        } else {
            panic!();
        }
        // HAVING is legal without GROUP BY (one group over the whole input).
        let s = parse("SELECT count(*) FROM t HAVING count(*) > 0").unwrap();
        if let Stmt::Select(sel) = s {
            assert!(sel.group_by.is_empty());
            assert!(sel.having.is_some());
        } else {
            panic!();
        }
        // GROUP BY must not swallow a following keyword as an alias.
        assert!(parse("SELECT a FROM t GROUP BY").is_err());
        assert!(parse("SELECT a FROM t GROUP a").is_err());
    }

    #[test]
    fn parses_insert_forms() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        assert!(matches!(
            s,
            Stmt::Insert {
                source: InsertSource::Values(ref rows),
                ..
            } if rows.len() == 2
        ));
        let s = parse("INSERT INTO t (a, b) VALUES (1, 2)").unwrap();
        assert!(matches!(s, Stmt::Insert { columns: Some(ref c), .. } if c.len() == 2));
        let s = parse("INSERT INTO t SELECT * FROM u").unwrap();
        assert!(matches!(
            s,
            Stmt::Insert {
                source: InsertSource::Select(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_update_delete() {
        let s = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'").unwrap();
        assert!(matches!(s, Stmt::Update { ref sets, .. } if sets.len() == 2));
        let s = parse("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(s, Stmt::Delete { .. }));
    }

    #[test]
    fn parses_create_drop() {
        let s =
            parse("CREATE TABLE m (ts timestamp, x double precision, u float, note text)").unwrap();
        if let Stmt::CreateTable { columns, .. } = s {
            assert_eq!(columns.len(), 4);
            assert_eq!(columns[1].1, DataType::Float);
        } else {
            panic!();
        }
        assert!(matches!(
            parse("DROP TABLE IF EXISTS m").unwrap(),
            Stmt::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse("CREATE TABLE IF NOT EXISTS z (a int)").unwrap(),
            Stmt::CreateTable {
                if_not_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_interval_and_timestamp_literals() {
        let s = parse(
            "SELECT * FROM generate_series(timestamp '2015-01-01', \
             timestamp '2015-01-02', interval '1 hour') AS time",
        )
        .unwrap();
        if let Stmt::Select(sel) = s {
            if let FromItem::Function { args, .. } = &sel.from[0] {
                assert!(matches!(args[2], Expr::Literal(Value::Interval(3600))));
            } else {
                panic!();
            }
        } else {
            panic!();
        }
    }

    #[test]
    fn cast_binds_tighter_than_neg() {
        // -1::float must parse as -(1::float)
        let s = parse("SELECT -1::float").unwrap();
        if let Stmt::Select(sel) = s {
            if let SelectItem::Expr { expr, .. } = &sel.items[0] {
                assert!(matches!(expr, Expr::Unary { op: UnOp::Neg, .. }));
            } else {
                panic!();
            }
        } else {
            panic!();
        }
    }

    #[test]
    fn count_star() {
        let s = parse("SELECT count(*) FROM t").unwrap();
        if let Stmt::Select(sel) = s {
            assert!(matches!(
                &sel.items[0],
                SelectItem::Expr {
                    expr: Expr::Function { name, args, .. },
                    ..
                } if name == "count" && args.is_empty()
            ));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_bind_parameters() {
        let s = parse("SELECT x FROM t WHERE ts < $1 AND u = $2").unwrap();
        if let Stmt::Select(sel) = s {
            let w = sel.where_clause.unwrap();
            assert!(matches!(w, Expr::Binary { op: BinOp::And, .. }));
            assert_eq!(crate::ast::max_param_expr(&w), 2);
        } else {
            panic!();
        }
        assert!(parse("SELECT $0").is_err());
    }

    #[test]
    fn rejects_trailing_tokens_and_bad_limit() {
        assert!(parse("SELECT 1 SELECT 2").is_err());
        assert!(parse("SELECT * FROM t LIMIT 'x'").is_err());
        assert!(parse("INSERT INTO t").is_err());
    }

    #[test]
    fn parses_index_ddl() {
        assert!(matches!(
            parse("CREATE INDEX t_k ON t (k)").unwrap(),
            Stmt::CreateIndex { ref name, ref table, ref column, unique: false }
                if name == "t_k" && table == "t" && column == "k"
        ));
        assert!(matches!(
            parse("CREATE UNIQUE INDEX u_k ON u (k)").unwrap(),
            Stmt::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse("DROP INDEX t_k").unwrap(),
            Stmt::DropIndex { ref name } if name == "t_k"
        ));
        assert!(parse("CREATE INDEX t_k ON t (k, j)").is_err());
    }

    #[test]
    fn parses_analyze_and_explain() {
        assert!(matches!(parse("ANALYZE").unwrap(), Stmt::Analyze(None)));
        assert!(matches!(
            parse("ANALYZE t;").unwrap(),
            Stmt::Analyze(Some(ref t)) if t == "t"
        ));
        match parse("EXPLAIN SELECT * FROM t WHERE k = 1").unwrap() {
            Stmt::Explain(inner) => assert!(matches!(*inner, Stmt::Select(_))),
            other => panic!("{other:?}"),
        }
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn parses_join_on() {
        let s = parse("SELECT * FROM a JOIN b ON a.k = b.k WHERE a.x > 0").unwrap();
        if let Stmt::Select(sel) = s {
            assert_eq!(sel.from.len(), 2);
            assert_eq!(sel.join_on.len(), 1);
            assert!(matches!(sel.join_on[0], Expr::Binary { op: BinOp::Eq, .. }));
            assert!(sel.where_clause.is_some());
        } else {
            panic!();
        }
        let s = parse("SELECT * FROM a INNER JOIN b ON a.k = b.k, c").unwrap();
        if let Stmt::Select(sel) = s {
            assert_eq!(sel.from.len(), 3);
            assert_eq!(sel.join_on.len(), 1);
        } else {
            panic!();
        }
        assert!(parse("SELECT * FROM a JOIN b").is_err());
    }

    #[test]
    fn parses_count_distinct() {
        let s = parse("SELECT count(DISTINCT x) FROM t").unwrap();
        if let Stmt::Select(sel) = s {
            assert!(matches!(
                &sel.items[0],
                SelectItem::Expr {
                    expr: Expr::Function { name, args, distinct: true },
                    ..
                } if name == "count" && args.len() == 1
            ));
        } else {
            panic!();
        }
        assert!(parse("SELECT count(DISTINCT) FROM t").is_err());
    }

    #[test]
    fn qualified_columns() {
        let s = parse("SELECT f.varName FROM fmu_variables('i') AS f").unwrap();
        if let Stmt::Select(sel) = s {
            assert!(matches!(
                &sel.items[0],
                SelectItem::Expr {
                    expr: Expr::Column { table: Some(t), name },
                    ..
                } if t == "f" && name == "varname"
            ));
        } else {
            panic!();
        }
    }
}
