//! Physical plans — the compile half of the plan → execute pipeline.
//!
//! [`compile`] turns one parsed [`Stmt`] into an immutable
//! [`PhysicalPlan`]. Plans are held as `Arc<PhysicalPlan>` by prepared
//! statements, so repeated [`crate::Statement::query`] executions bind
//! parameters against a shared operator tree instead of re-resolving (or
//! cloning) any expression per execution:
//!
//! * **Static SELECTs** (every FROM item is a base table) resolve
//!   completely at plan time: wildcards expand against the table schemas,
//!   GROUP BY / ORDER BY ordinals and output aliases resolve to
//!   projection expressions, and every column reference is rewritten to a
//!   positional [`Expr::Slot`] — per-row evaluation never touches the
//!   name environment again.
//! * **Grouped queries** are lowered once: subtrees matching a GROUP BY
//!   key become [`Expr::GroupKey`] references, aggregate calls are
//!   deduplicated by expression identity into the plan's [`AggCall`] list
//!   and replaced by [`Expr::Agg`] references — so each distinct
//!   aggregate is computed exactly once per group at execution, no matter
//!   how often it appears across the select list, HAVING and ORDER BY.
//! * **Dynamic SELECTs** (a set-returning function appears in FROM) only
//!   know their scan schema at execution time; the same resolution and
//!   lowering run per execution against the runtime bindings, feeding the
//!   identical execution operators.
//!
//! Plans are invalidated by DDL: the [`crate::Database`] keeps a schema
//! epoch that CREATE/DROP TABLE bump, and a cached plan compiled under an
//! older epoch is recompiled on its next execution.

use std::sync::Arc;

use crate::ast::{
    contains_aggregate, map_slots, walk_slots, BinOp, Expr, FromItem, InsertSource, SelectItem,
    SelectStmt, Stmt, UnOp, AGGREGATE_FUNCTIONS,
};
use crate::cost::{self, IndexChoice};
use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::functions::ScalarFn;
use crate::value::{DataType, Value};

/// One FROM item's contribution to the name environment.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    /// Qualifier other parts of the query use for this item's columns.
    pub qualifier: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Offset of this binding's first column in the flattened row.
    pub offset: usize,
}

/// Name environment over a flattened joined row.
pub(crate) struct Env<'a> {
    pub bindings: &'a [Binding],
}

impl Env<'_> {
    /// Resolve a column reference to a flat index.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let mut found: Option<usize> = None;
        for b in self.bindings {
            if let Some(q) = table {
                if !q.eq_ignore_ascii_case(&b.qualifier) {
                    continue;
                }
            }
            if let Some(i) = b.columns.iter().position(|c| *c == name) {
                if found.is_some() {
                    return Err(SqlError::UnknownColumn(format!(
                        "{name} (ambiguous reference)"
                    )));
                }
                found = Some(b.offset + i);
            }
        }
        found.ok_or_else(|| match table {
            Some(t) => SqlError::UnknownColumn(format!("{t}.{name}")),
            None => SqlError::UnknownColumn(name),
        })
    }
}

// ---------------------------------------------------------------------------
// Plan types
// ---------------------------------------------------------------------------

/// A compiled statement, shared immutably between executions.
pub(crate) enum PhysicalPlan {
    /// SELECT over base tables only — fully resolved at plan time.
    StaticSelect(Box<StaticSelectPlan>),
    /// SELECT with set-returning functions in FROM: the scan schema is
    /// only known at execution, so resolution and lowering re-run per
    /// execution (feeding the same operators as the static path).
    DynamicSelect,
    /// INSERT with its target column mapping resolved.
    Insert(InsertPlan),
    /// UPDATE with its SET targets and expressions resolved.
    Update(DmlPlan),
    /// DELETE with its predicate resolved.
    Delete(DmlPlan),
    /// `EXPLAIN` — the inner statement's physical plan, pre-rendered at
    /// compile time into one text line per output row.
    Explain(Vec<String>),
    /// DDL — executed directly from the AST.
    Other,
}

/// A fully resolved SELECT over base tables.
pub(crate) struct StaticSelectPlan {
    /// Scanned tables in join order (lower-case names).
    pub tables: Vec<String>,
    /// Column names of each scanned table at plan time. The scan
    /// re-checks these under its read guard: a concurrent DROP+CREATE
    /// between the epoch check and the scan must surface as a stale-plan
    /// error, never as an out-of-bounds (or silently remapped) `Slot`.
    pub schemas: Vec<Vec<String>>,
    /// Per scanned table: the column indices the statement actually
    /// reads, ascending. Snapshot scans clone only these columns; the
    /// pruned row is the concatenation of each table's used columns.
    pub used_cols: Vec<Vec<usize>>,
    /// The resolved operator pipeline. Every expression addresses the
    /// **pruned** row layout.
    pub ops: SelectOps,
    /// Zero-copy scan program (expressions in the **full** row layout of
    /// the single scanned table), present when every scan-side
    /// expression is re-entrancy-free — the executor then runs the scan
    /// over borrowed rows under the table read guard, materializing only
    /// the projection of rows that survive the filter.
    pub zero: Option<ZeroScan>,
    /// Hash equi-join chosen by the cost model for a two-table scan:
    /// build a hash table over the right table's join keys, probe with
    /// the left. Slots address the pruned concatenated row layout.
    pub hash_join: Option<HashJoin>,
}

/// A cost-chosen hash equi-join between the two scanned tables.
pub(crate) struct HashJoin {
    /// Join key slot of the left (first) table, in the pruned
    /// concatenated layout.
    pub left_slot: usize,
    /// Join key slot of the right (second) table, in the pruned
    /// concatenated layout.
    pub right_slot: usize,
}

/// The under-guard half of a zero-copy scan: the statement's scan-side
/// expressions, kept in the scanned table's full column layout so they
/// evaluate directly against borrowed rows. Scalar calls index the same
/// [`SelectOps::fns`] table as the pruned pipeline.
pub(crate) struct ZeroScan {
    /// WHERE predicate (full layout).
    pub where_clause: Option<Expr>,
    pub kind: ZeroScanKind,
    /// Cost-chosen index access path: probe this index for candidate
    /// version positions instead of walking every version. Candidates
    /// are a superset; the executor re-checks visibility and the full
    /// WHERE clause, so results are identical to a sequential scan.
    pub access: Option<IndexChoice>,
    /// Plan-time choice: run this scan on the columnar batch path
    /// (typed column vectors with vectorized filter / aggregate / sort
    /// kernels, see `batch.rs`). The executor may still fall back to
    /// the scalar path at run time when a batch holds value shapes the
    /// kernels cannot reproduce byte-identically.
    pub vectorized: bool,
}

/// What runs under the read guard for each statement shape.
pub(crate) enum ZeroScanKind {
    /// Plain / DISTINCT / ordered SELECT: the projection (and ORDER BY
    /// keys) evaluate per surviving row; only their results materialize.
    Select {
        /// Projection expressions (full layout).
        projections: Vec<Expr>,
        /// ORDER BY keys (full layout); the sort itself runs after the
        /// guard drops, over `(key, projected row)` pairs.
        order_by: Vec<(Expr, bool)>,
    },
    /// Grouped query: the accumulation sweep (keys + aggregate
    /// arguments, full layout) runs under the guard; emission reads the
    /// memoized per-group values through the pruned pipeline afterwards.
    Grouped(GroupPlan),
}

/// UPDATE / DELETE with the predicate (and SET expressions) resolved to
/// the target table's column layout.
pub(crate) struct DmlPlan {
    /// Names of the resolved scalar functions, parallel to `fns` (for
    /// EXPLAIN rendering).
    pub fn_names: Vec<String>,
    /// Target table (lower-case).
    pub table: String,
    /// Target column names at plan time — re-checked under the guard so
    /// a DDL race surfaces as a stale-plan error.
    pub schema_cols: Vec<String>,
    /// Schema positions assigned by SET, in statement order (UPDATE;
    /// empty for DELETE).
    pub set_idx: Vec<usize>,
    /// SET value expressions, slot-resolved (UPDATE; empty for DELETE).
    pub sets: Vec<Expr>,
    /// WHERE predicate, slot-resolved.
    pub where_clause: Option<Expr>,
    /// Resolved scalar functions referenced by the expressions.
    pub fns: Vec<PlanFn>,
    /// Every expression is re-entrancy-free: the executor may evaluate
    /// under the table's write guard and mutate matching rows in place
    /// instead of snapshotting and rebuilding the table.
    pub in_place: bool,
}

/// The operator pipeline of a SELECT after name resolution: filter →
/// \[group → having\] → project → \[distinct\] → sort → limit. All
/// expressions are slot-resolved; in grouped pipelines the projection,
/// HAVING and ORDER BY expressions are additionally lowered to
/// `GroupKey`/`Agg` references.
pub(crate) struct SelectOps {
    /// Output column names.
    pub columns: Vec<String>,
    /// Names of the resolved scalar functions, parallel to `fns` (for
    /// EXPLAIN rendering).
    pub fn_names: Vec<String>,
    /// Scalar functions referenced by the resolved expressions;
    /// `Expr::ScalarCall` indexes into this table, so per-row evaluation
    /// never consults the function registry. (UDF re-registration bumps
    /// the schema epoch, invalidating plans that resolved the old body.)
    pub fns: Vec<PlanFn>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// Projection expressions, one per output column.
    pub projections: Vec<Expr>,
    /// ORDER BY keys (evaluated per source row, or per group when
    /// grouped). Empty when `distinct` ordering applies.
    pub order_by: Vec<(Expr, bool)>,
    /// Grouping operator, when the query groups or aggregates.
    pub group: Option<GroupPlan>,
    /// `SELECT DISTINCT` — deduplicate projected rows.
    pub distinct: bool,
    /// For DISTINCT + ORDER BY: sort keys as output-column indices
    /// (DISTINCT requires ORDER BY expressions to appear in the select
    /// list, so they always map to projected columns).
    pub distinct_order: Vec<(usize, bool)>,
    /// LIMIT row bound.
    pub limit: usize,
}

/// One resolved scalar function of a plan: either an ordinary registered
/// UDF, or a pure builtin the executor evaluates natively (the call
/// counter still ticks, and a type the native path does not handle falls
/// back to the UDF so error wording stays identical).
pub(crate) enum PlanFn {
    /// Registered UDF, called through its (coercing, counting) wrapper.
    Udf(ScalarFn),
    /// Pure builtin evaluated in place — also safe inside a zero-copy
    /// scan that holds a table read guard, since it cannot re-enter the
    /// database.
    Intrinsic {
        op: crate::functions::Intrinsic,
        counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
        fallback: ScalarFn,
    },
}

/// The grouping operator: bucket source rows by key, memoize each
/// distinct aggregate once per group.
pub(crate) struct GroupPlan {
    /// Grouping key expressions (empty = one group over the whole input).
    pub keys: Vec<Expr>,
    /// Distinct aggregate calls referenced anywhere in the select list,
    /// HAVING or ORDER BY; `Expr::Agg(k)` indexes into this list.
    pub aggs: Vec<AggCall>,
    /// HAVING predicate, lowered to `GroupKey`/`Agg` references.
    pub having: Option<Expr>,
}

/// The aggregate kinds the grouping operator folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggOp {
    /// `count(*)` — rows in the group.
    CountStar,
    /// `count(e)` — non-NULL values.
    Count,
    /// `count(DISTINCT e)` — distinct non-NULL values.
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
}

/// One deduplicated aggregate call of a grouped query.
#[derive(PartialEq)]
pub(crate) struct AggCall {
    /// The fold this call performs (resolved from the name at plan time).
    pub op: AggOp,
    /// Argument expressions, slot-resolved (evaluated per source row).
    pub args: Vec<Expr>,
}

/// INSERT with the target column mapping resolved against the schema.
pub(crate) struct InsertPlan {
    /// Target table (lower-case).
    pub table: String,
    /// Schema positions of an explicit column list, in list order.
    pub column_idxs: Option<Vec<usize>>,
    /// Width of the target schema (for NULL-filling partial rows).
    pub schema_len: usize,
    /// Target column names at plan time — re-checked before inserting so
    /// a DDL race cannot silently remap values into the wrong columns.
    pub schema_cols: Vec<String>,
    /// Compiled SELECT source (`None` for VALUES — those expressions are
    /// evaluated straight from the AST).
    pub source: Option<Arc<PhysicalPlan>>,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Reject aggregate calls in clauses where PostgreSQL forbids them
/// (`aggregate functions are not allowed in WHERE`, …).
pub(crate) fn reject_aggregate(clause: &str, e: &Expr) -> Result<()> {
    if contains_aggregate(e) {
        return Err(SqlError::Grouping(format!(
            "aggregate functions are not allowed in {clause}"
        )));
    }
    Ok(())
}

/// Compile one statement into its physical plan.
pub(crate) fn compile(db: &Database, stmt: &Stmt) -> Result<PhysicalPlan> {
    match stmt {
        Stmt::Select(sel) => compile_select(db, sel),
        Stmt::Insert {
            table,
            columns,
            source,
        } => {
            let handle = db.get_table(table)?;
            let (schema_len, schema_cols, column_idxs) = {
                let guard = handle.read();
                let idxs = columns
                    .as_ref()
                    .map(|cols| {
                        cols.iter()
                            .map(|c| {
                                guard.schema.index_of(c).ok_or_else(|| {
                                    SqlError::UnknownColumn(format!("{c} in INSERT column list"))
                                })
                            })
                            .collect::<Result<Vec<usize>>>()
                    })
                    .transpose()?;
                let cols: Vec<String> = guard
                    .schema
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                (guard.schema.len(), cols, idxs)
            };
            let source_plan = match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            reject_aggregate("VALUES", e)?;
                        }
                    }
                    None
                }
                InsertSource::Select(sel) => Some(Arc::new(compile_select(db, sel)?)),
            };
            Ok(PhysicalPlan::Insert(InsertPlan {
                table: table.to_ascii_lowercase(),
                column_idxs,
                schema_len,
                schema_cols,
                source: source_plan,
            }))
        }
        Stmt::Update {
            table,
            sets,
            where_clause,
        } => {
            for (_, e) in sets {
                reject_aggregate("UPDATE", e)?;
            }
            if let Some(w) = where_clause {
                reject_aggregate("WHERE", w)?;
            }
            let (plan, set_idx, resolved) =
                compile_dml(db, table, where_clause.as_ref(), |schema| {
                    let mut idx = Vec::with_capacity(sets.len());
                    for (c, _) in sets {
                        idx.push(schema.index_of(c).ok_or_else(|| {
                            SqlError::UnknownColumn(format!("{c} in UPDATE SET"))
                        })?);
                    }
                    Ok((idx, sets.iter().map(|(_, e)| e).collect()))
                })?;
            Ok(PhysicalPlan::Update(DmlPlan {
                set_idx,
                sets: resolved,
                ..plan
            }))
        }
        Stmt::Delete {
            table,
            where_clause,
        } => {
            if let Some(w) = where_clause {
                reject_aggregate("WHERE", w)?;
            }
            let (plan, _, _) = compile_dml(db, table, where_clause.as_ref(), |_| {
                Ok((Vec::new(), Vec::new()))
            })?;
            Ok(PhysicalPlan::Delete(plan))
        }
        Stmt::Explain(inner) => {
            let plan = compile(db, inner)?;
            Ok(PhysicalPlan::Explain(render_plan(inner, &plan)?))
        }
        Stmt::CreateTable { .. }
        | Stmt::DropTable { .. }
        | Stmt::CreateIndex { .. }
        | Stmt::DropIndex { .. }
        | Stmt::Analyze(_)
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Rollback => Ok(PhysicalPlan::Other),
    }
}

/// Shared UPDATE/DELETE compilation: resolve the target schema, the SET
/// columns/expressions (via `sets_of`) and the WHERE predicate, and
/// classify whether everything may evaluate under the table's write
/// guard (no expression can re-enter the database).
fn compile_dml<'a>(
    db: &Database,
    table: &str,
    where_clause: Option<&Expr>,
    sets_of: impl FnOnce(&crate::table::Schema) -> Result<(Vec<usize>, Vec<&'a Expr>)>,
) -> Result<(DmlPlan, Vec<usize>, Vec<Expr>)> {
    let handle = db.get_table(table)?;
    let (schema_cols, set_idx, set_exprs) = {
        let guard = handle.read();
        let cols: Vec<String> = guard
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let (idx, exprs) = sets_of(&guard.schema)?;
        (cols, idx, exprs)
    };
    let binding = [Binding {
        qualifier: table.to_string(),
        columns: schema_cols.clone(),
        offset: 0,
    }];
    let env = Env { bindings: &binding };
    let mut resolver = Resolver {
        db,
        names: Vec::new(),
        fns: Vec::new(),
    };
    let sets: Vec<Expr> = set_exprs
        .into_iter()
        .map(|e| resolve_cols(e, &env, &mut resolver))
        .collect::<Result<_>>()?;
    let where_clause = where_clause
        .map(|w| resolve_cols(w, &env, &mut resolver))
        .transpose()?;
    let in_place = where_clause
        .as_ref()
        .is_none_or(|w| scan_safe(w, &resolver.fns))
        && sets.iter().all(|e| scan_safe(e, &resolver.fns));
    Ok((
        DmlPlan {
            fn_names: resolver.names,
            table: table.to_ascii_lowercase(),
            schema_cols,
            set_idx: Vec::new(),
            sets: Vec::new(),
            where_clause,
            fns: resolver.fns,
            in_place,
        },
        set_idx,
        sets,
    ))
}

/// May this expression run while a table guard is held? True when it
/// cannot re-enter the database: no raw function calls, and resolved
/// calls only to native intrinsics.
pub(crate) fn scan_safe(e: &Expr, fns: &[PlanFn]) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) | Expr::GroupKey(_) | Expr::Agg(_) => {
            true
        }
        Expr::Column { .. } | Expr::Function { .. } => false,
        Expr::ScalarCall { f, args } => {
            matches!(fns[*f], PlanFn::Intrinsic { .. }) && args.iter().all(|a| scan_safe(a, fns))
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            scan_safe(expr, fns)
        }
        Expr::Binary { left, right, .. } => scan_safe(left, fns) && scan_safe(right, fns),
        Expr::InList { expr, list, .. } => {
            scan_safe(expr, fns) && list.iter().all(|e| scan_safe(e, fns))
        }
    }
}

/// May this zero-copy scan run on the columnar batch path? Stricter
/// than [`scan_safe`]: every scan-side expression must be one the typed
/// kernels implement, and the statement shape must map onto a batch
/// operator — grouped aggregation, or a single-key ordered SELECT
/// (where the specialized index sort and the top-K heap apply).
/// Unordered streaming SELECTs keep the tuple-at-a-time cursor: they
/// hand rows out incrementally, which a materialized batch cannot.
fn vectorizable(z: &ZeroScan, ops: &SelectOps) -> bool {
    let ok = |e: &Expr| vec_expr_ok(e, &ops.fns);
    if !z.where_clause.as_ref().is_none_or(ok) {
        return false;
    }
    match &z.kind {
        ZeroScanKind::Grouped(gp) => {
            gp.keys.iter().all(ok) && gp.aggs.iter().all(|c| c.args.iter().all(ok))
        }
        ZeroScanKind::Select { order_by, .. } => {
            order_by.len() == 1 && !ops.distinct && ok(&order_by[0].0)
        }
    }
}

/// The expression subset the vectorized kernels implement end-to-end:
/// typed arithmetic and comparisons, Kleene AND/OR, IS NULL, int/float
/// casts, and single-argument native intrinsics. Anything else (string
/// concat, IN lists, NULL literals, re-entrant UDF calls) keeps the
/// scalar executor — the run-time kernels would only discover the same
/// thing and fall back after filling a batch for nothing.
fn vec_expr_ok(e: &Expr, fns: &[PlanFn]) -> bool {
    match e {
        Expr::Literal(Value::Null) => false,
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) => true,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => vec_expr_ok(expr, fns),
        Expr::Cast { expr, ty } => {
            matches!(ty, DataType::Int | DataType::Float) && vec_expr_ok(expr, fns)
        }
        Expr::Binary { op, left, right } => {
            *op != BinOp::Concat && vec_expr_ok(left, fns) && vec_expr_ok(right, fns)
        }
        Expr::ScalarCall { f, args } => {
            matches!(fns[*f], PlanFn::Intrinsic { .. })
                && args.len() == 1
                && vec_expr_ok(&args[0], fns)
        }
        _ => false,
    }
}

fn compile_select(db: &Database, sel: &SelectStmt) -> Result<PhysicalPlan> {
    // Clause-placement validation (independent of any schema).
    if let Some(w) = &sel.where_clause {
        reject_aggregate("WHERE", w)?;
    }
    for e in &sel.join_on {
        reject_aggregate("JOIN conditions", e)?;
    }
    for item in &sel.from {
        if let FromItem::Function { args, .. } = item {
            for a in args {
                reject_aggregate("FROM", a)?;
            }
        }
    }
    if sel
        .from
        .iter()
        .any(|i| matches!(i, FromItem::Function { .. }))
    {
        return Ok(PhysicalPlan::DynamicSelect);
    }

    // All-table FROM: the scan schema is known now — resolve everything.
    let mut bindings: Vec<Binding> = Vec::with_capacity(sel.from.len());
    let mut tables = Vec::with_capacity(sel.from.len());
    for item in &sel.from {
        let FromItem::Table { name, alias } = item else {
            unreachable!("function FROM items take the dynamic path");
        };
        let handle = db.get_table(name)?;
        let cols: Vec<String> = handle
            .read()
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        bindings.push(Binding {
            qualifier: alias.clone().unwrap_or_else(|| name.clone()),
            columns: cols,
            offset: bindings.last().map_or(0, |b| b.offset + b.columns.len()),
        });
        tables.push(name.to_ascii_lowercase());
    }
    let schemas: Vec<Vec<String>> = bindings.iter().map(|b| b.columns.clone()).collect();
    let mut ops = build_select(db, sel, &bindings)?;
    let mut zero = build_zero_scan(&ops, tables.len());
    let used_cols = prune_columns(&mut ops, &bindings);
    if let Some(z) = &mut zero {
        z.access = choose_index_access(db, &tables[0], z.where_clause.as_ref());
        z.vectorized = db.vectorized_enabled() && vectorizable(z, &ops);
    }
    let hash_join = choose_hash_join(db, &tables, &used_cols, &ops);
    Ok(PhysicalPlan::StaticSelect(Box::new(StaticSelectPlan {
        tables,
        schemas,
        used_cols,
        ops,
        zero,
        hash_join,
    })))
}

/// Cost out a secondary-index access path for a single-table zero-copy
/// scan. The scan program keeps the table's full row layout, so sargable
/// slots are schema column ordinals — exactly what indexes cover.
fn choose_index_access(
    db: &Database,
    table: &str,
    where_clause: Option<&Expr>,
) -> Option<IndexChoice> {
    let w = where_clause?;
    if !db.index_access_enabled() {
        return None;
    }
    let Ok(handle) = db.get_table(table) else {
        return None;
    };
    let indexes: Vec<(String, usize)> = handle
        .read()
        .indexes()
        .iter()
        .map(|ix| (ix.name.clone(), ix.column))
        .collect();
    if indexes.is_empty() {
        return None;
    }
    let stats = db.stats_for(table)?;
    let guard = handle.read();
    cost::choose_access(Some(w), &guard.schema, &indexes, &stats)
}

/// Cost out a hash join for a two-table scan: the WHERE clause (in the
/// pruned concatenated layout) must contain an equi-conjunct between a
/// column of each table, with identical column types — cross-type
/// equality (`int = float`, `timestamp = text`) follows comparison
/// coercions a hash key cannot mirror exactly, so it stays on the
/// nested-loop path.
fn choose_hash_join(
    db: &Database,
    tables: &[String],
    used_cols: &[Vec<usize>],
    ops: &SelectOps,
) -> Option<HashJoin> {
    if tables.len() != 2 || !db.hash_join_enabled() {
        return None;
    }
    let w = ops.where_clause.as_ref()?;
    let w0 = used_cols[0].len();
    let w1 = used_cols[1].len();
    for (a, b) in cost::equi_slot_pairs(w) {
        let (l, r) = if a < w0 && (w0..w0 + w1).contains(&b) {
            (a, b)
        } else if b < w0 && (w0..w0 + w1).contains(&a) {
            (b, a)
        } else {
            continue;
        };
        let dl = column_dtype(db, &tables[0], used_cols[0][l])?;
        let dr = column_dtype(db, &tables[1], used_cols[1][r - w0])?;
        if dl != dr || dl == DataType::Variant {
            continue;
        }
        let nl = db.stats_for(&tables[0])?.row_count;
        let nr = db.stats_for(&tables[1])?.row_count;
        if cost::hash_join_beats_nested(nl, nr) {
            return Some(HashJoin {
                left_slot: l,
                right_slot: r,
            });
        }
    }
    None
}

/// The declared type of one table column, if the table still exists.
fn column_dtype(db: &Database, table: &str, column: usize) -> Option<DataType> {
    let handle = db.get_table(table).ok()?;
    let guard = handle.read();
    guard.schema.columns.get(column).map(|c| c.dtype)
}

/// Classify a static plan's scan: when it reads a single table and every
/// scan-side expression is re-entrancy-free, clone those expressions
/// (still in the full column layout) into the zero-copy scan program the
/// executor runs under the table read guard. Re-entrant expressions —
/// UDFs that may call back into the database — keep the snapshot path,
/// chosen here, per plan, never per row.
fn build_zero_scan(ops: &SelectOps, n_tables: usize) -> Option<ZeroScan> {
    if n_tables != 1 {
        return None;
    }
    let safe = |e: &Expr| scan_safe(e, &ops.fns);
    if !ops.where_clause.as_ref().is_none_or(safe) {
        return None;
    }
    match &ops.group {
        Some(gp) => {
            // Grouped: only the accumulation sweep runs under the guard
            // (emission reads memoized group values, so HAVING /
            // projection / ORDER BY may still call arbitrary UDFs).
            let sweep_safe =
                gp.keys.iter().all(safe) && gp.aggs.iter().all(|c| c.args.iter().all(safe));
            sweep_safe.then(|| ZeroScan {
                where_clause: ops.where_clause.clone(),
                access: None,
                vectorized: false,
                kind: ZeroScanKind::Grouped(GroupPlan {
                    keys: gp.keys.clone(),
                    aggs: gp
                        .aggs
                        .iter()
                        .map(|c| AggCall {
                            op: c.op,
                            args: c.args.clone(),
                        })
                        .collect(),
                    // HAVING belongs to emission; the sweep never
                    // evaluates it.
                    having: None,
                }),
            })
        }
        None => {
            let all_safe =
                ops.projections.iter().all(safe) && ops.order_by.iter().all(|(e, _)| safe(e));
            all_safe.then(|| ZeroScan {
                where_clause: ops.where_clause.clone(),
                access: None,
                vectorized: false,
                kind: ZeroScanKind::Select {
                    projections: ops.projections.clone(),
                    order_by: ops.order_by.clone(),
                },
            })
        }
    }
}

/// Column pruning: compute the set of slots the pipeline actually reads,
/// re-address every expression to the pruned row layout, and return each
/// table's used column indices (what a snapshot scan must clone).
fn prune_columns(ops: &mut SelectOps, bindings: &[Binding]) -> Vec<Vec<usize>> {
    let mut used: Vec<usize> = Vec::new();
    {
        let mut mark = |i: usize| used.push(i);
        for e in ops
            .where_clause
            .iter()
            .chain(&ops.projections)
            .chain(ops.order_by.iter().map(|(e, _)| e))
        {
            walk_slots(e, &mut mark);
        }
        if let Some(gp) = &ops.group {
            for e in gp.keys.iter().chain(gp.aggs.iter().flat_map(|c| &c.args)) {
                walk_slots(e, &mut mark);
            }
            if let Some(h) = &gp.having {
                walk_slots(h, &mut mark);
            }
        }
    }
    used.sort_unstable();
    used.dedup();
    // Old flat slot -> pruned index.
    let full_width = bindings.last().map_or(0, |b| b.offset + b.columns.len());
    let mut map = vec![usize::MAX; full_width];
    for (new, &old) in used.iter().enumerate() {
        map[old] = new;
    }
    let mut remap = |i: usize| map[i];
    for e in ops
        .where_clause
        .iter_mut()
        .chain(ops.projections.iter_mut())
        .chain(ops.order_by.iter_mut().map(|(e, _)| e))
    {
        map_slots(e, &mut remap);
    }
    if let Some(gp) = &mut ops.group {
        for e in gp
            .keys
            .iter_mut()
            .chain(gp.aggs.iter_mut().flat_map(|c| c.args.iter_mut()))
        {
            map_slots(e, &mut remap);
        }
        if let Some(h) = &mut gp.having {
            map_slots(h, &mut remap);
        }
    }
    bindings
        .iter()
        .map(|b| {
            used.iter()
                .filter(|&&s| s >= b.offset && s < b.offset + b.columns.len())
                .map(|&s| s - b.offset)
                .collect()
        })
        .collect()
}

/// Shared state of one resolution pass: the database (for scalar-function
/// lookup) and the plan's deduplicated function table.
struct Resolver<'a> {
    db: &'a Database,
    names: Vec<String>,
    fns: Vec<PlanFn>,
}

impl Resolver<'_> {
    /// Resolve a scalar function to its table index, registering it on
    /// first use. Unknown functions error here — at plan time. Pure
    /// builtins resolve to native intrinsics (the registered UDF stays as
    /// the error/fallback path).
    fn function(&mut self, name: &str) -> Result<usize> {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Ok(i);
        }
        let f = self
            .db
            .lookup_scalar(name)
            .ok_or_else(|| SqlError::UnknownFunction(format!("{name}(…)")))?;
        let entry = match self.db.intrinsic_of(name) {
            Some(op) => PlanFn::Intrinsic {
                op,
                counter: self.db.udf_counter(name),
                fallback: f,
            },
            None => PlanFn::Udf(f),
        };
        self.names.push(name.to_string());
        self.fns.push(entry);
        Ok(self.fns.len() - 1)
    }
}

/// Resolve and lower a SELECT's clauses against a known scan schema into
/// the executable operator pipeline. Shared by plan-time compilation
/// (static scans) and per-execution resolution (dynamic scans).
pub(crate) fn build_select(
    db: &Database,
    sel: &SelectStmt,
    bindings: &[Binding],
) -> Result<SelectOps> {
    let env = Env { bindings };
    let mut resolver = Resolver {
        db,
        names: Vec::new(),
        fns: Vec::new(),
    };

    // 1. Expand projection wildcards into (raw expr, output name) pairs.
    let mut raw_projs: Vec<(Expr, String)> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    for c in &b.columns {
                        raw_projs.push((
                            Expr::Column {
                                table: Some(b.qualifier.clone()),
                                name: c.clone(),
                            },
                            c.clone(),
                        ));
                    }
                }
                if bindings.is_empty() {
                    return Err(SqlError::Parse("SELECT * with no FROM items".into()));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let b = bindings
                    .iter()
                    .find(|b| b.qualifier.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::UnknownTable(q.clone()))?;
                for c in &b.columns {
                    raw_projs.push((
                        Expr::Column {
                            table: Some(b.qualifier.clone()),
                            name: c.clone(),
                        },
                        c.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| derived_name(expr));
                raw_projs.push((expr.clone(), name.to_ascii_lowercase()));
            }
        }
    }
    let columns: Vec<String> = raw_projs.iter().map(|(_, n)| n.clone()).collect();

    // 2. Resolve GROUP BY ordinals (`GROUP BY 1` names the first select
    //    item, as in PostgreSQL) and reject aggregates in keys.
    let mut raw_group: Vec<Expr> = Vec::with_capacity(sel.group_by.len());
    for e in &sel.group_by {
        let resolved = match e {
            Expr::Literal(Value::Int(n)) => {
                let i = usize::try_from(*n - 1)
                    .ok()
                    .filter(|i| *i < raw_projs.len())
                    .ok_or_else(|| {
                        SqlError::Grouping(format!("GROUP BY position {n} is not in select list"))
                    })?;
                raw_projs[i].0.clone()
            }
            other => other.clone(),
        };
        reject_aggregate("GROUP BY", &resolved)?;
        raw_group.push(resolved);
    }

    // 3. ORDER BY items may name an output column (alias) or its 1-based
    //    ordinal; both resolve to the projected expression. A bare name
    //    matching both an output and an input column means the output.
    let mut raw_order: Vec<(Expr, bool)> = Vec::with_capacity(sel.order_by.len());
    for (e, desc) in &sel.order_by {
        let resolved = match e {
            Expr::Literal(Value::Int(n)) => {
                let i = usize::try_from(*n - 1)
                    .ok()
                    .filter(|i| *i < raw_projs.len())
                    .ok_or_else(|| {
                        SqlError::Grouping(format!("ORDER BY position {n} is not in select list"))
                    })?;
                raw_projs[i].0.clone()
            }
            Expr::Column { table: None, name } => {
                let hits: Vec<&Expr> = raw_projs
                    .iter()
                    .filter(|(_, out)| out.eq_ignore_ascii_case(name))
                    .map(|(pe, _)| pe)
                    .collect();
                match hits.as_slice() {
                    [] => e.clone(),
                    [first, rest @ ..] => {
                        // Several output columns may share the name as long
                        // as they are the same expression (`SELECT *, x …
                        // ORDER BY x`); different expressions are ambiguous.
                        if rest.iter().all(|pe| same_group_expr(&env, first, pe)) {
                            (*first).clone()
                        } else {
                            return Err(SqlError::Grouping(format!(
                                "ORDER BY \"{name}\" is ambiguous"
                            )));
                        }
                    }
                }
            }
            other => other.clone(),
        };
        raw_order.push((resolved, *desc));
    }

    let has_aggregate = raw_projs.iter().any(|(e, _)| contains_aggregate(e))
        || sel.having.as_ref().is_some_and(contains_aggregate)
        || raw_order.iter().any(|(e, _)| contains_aggregate(e));
    let grouped = has_aggregate || !raw_group.is_empty() || sel.having.is_some();
    let limit = sel.limit.map(|l| l as usize).unwrap_or(usize::MAX);

    // 4. DISTINCT sorting happens on projected rows, so each ORDER BY
    //    expression must be one of the select-list expressions.
    let mut distinct_order: Vec<(usize, bool)> = Vec::new();
    if sel.distinct && !raw_order.is_empty() {
        for (e, desc) in &raw_order {
            let i = raw_projs
                .iter()
                .position(|(p, _)| same_group_expr(&env, p, e))
                .ok_or_else(|| {
                    SqlError::Grouping(
                        "for SELECT DISTINCT, ORDER BY expressions must appear in select list"
                            .into(),
                    )
                })?;
            distinct_order.push((i, *desc));
        }
    }

    let where_clause = joined_where(sel)
        .as_ref()
        .map(|w| resolve_cols(w, &env, &mut resolver))
        .transpose()?;

    if grouped {
        // Lower the output clauses once: key subtrees → GroupKey, each
        // distinct aggregate call → Agg over the shared list.
        let keys: Vec<Expr> = raw_group
            .iter()
            .map(|e| resolve_cols(e, &env, &mut resolver))
            .collect::<Result<_>>()?;
        let mut aggs: Vec<AggCall> = Vec::new();
        let projections: Vec<Expr> = raw_projs
            .iter()
            .map(|(e, _)| lower_grouped(e, &raw_group, &env, &mut aggs, &mut resolver))
            .collect::<Result<_>>()?;
        let having = sel
            .having
            .as_ref()
            .map(|h| lower_grouped(h, &raw_group, &env, &mut aggs, &mut resolver))
            .transpose()?;
        let order_by = if sel.distinct {
            Vec::new()
        } else {
            raw_order
                .iter()
                .map(|(e, desc)| {
                    Ok((
                        lower_grouped(e, &raw_group, &env, &mut aggs, &mut resolver)?,
                        *desc,
                    ))
                })
                .collect::<Result<_>>()?
        };
        Ok(SelectOps {
            columns,
            fn_names: resolver.names,
            fns: resolver.fns,
            where_clause,
            projections,
            order_by,
            group: Some(GroupPlan { keys, aggs, having }),
            distinct: sel.distinct,
            distinct_order,
            limit,
        })
    } else {
        let projections: Vec<Expr> = raw_projs
            .iter()
            .map(|(e, _)| resolve_cols(e, &env, &mut resolver))
            .collect::<Result<_>>()?;
        let order_by = if sel.distinct {
            Vec::new()
        } else {
            raw_order
                .iter()
                .map(|(e, desc)| Ok((resolve_cols(e, &env, &mut resolver)?, *desc)))
                .collect::<Result<_>>()?
        };
        Ok(SelectOps {
            columns,
            fn_names: resolver.names,
            fns: resolver.fns,
            where_clause,
            projections,
            order_by,
            group: None,
            distinct: sel.distinct,
            distinct_order,
            limit,
        })
    }
}

/// The effective WHERE clause of a SELECT: the explicit WHERE predicate
/// ANDed with every `JOIN … ON` condition (inner-join semantics).
pub(crate) fn joined_where(sel: &SelectStmt) -> Option<Expr> {
    let mut acc = sel.where_clause.clone();
    for on in &sel.join_on {
        acc = Some(match acc {
            None => on.clone(),
            Some(w) => Expr::Binary {
                op: BinOp::And,
                left: Box::new(w),
                right: Box::new(on.clone()),
            },
        });
    }
    acc
}

/// Rewrite every column reference to its flat row index and every scalar
/// function call to its plan-table index.
fn resolve_cols(e: &Expr, env: &Env<'_>, r: &mut Resolver<'_>) -> Result<Expr> {
    Ok(match e {
        Expr::Column { table, name } => Expr::Slot(env.resolve(table.as_deref(), name)?),
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) | Expr::GroupKey(_) | Expr::Agg(_) => {
            e.clone()
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(resolve_cols(expr, env, r)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(resolve_cols(left, env, r)?),
            right: Box::new(resolve_cols(right, env, r)?),
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(resolve_cols(expr, env, r)?),
            ty: *ty,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(resolve_cols(expr, env, r)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(resolve_cols(expr, env, r)?),
            list: list
                .iter()
                .map(|e| resolve_cols(e, env, r))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            if *distinct {
                return Err(not_an_aggregate(name));
            }
            Expr::ScalarCall {
                f: r.function(name)?,
                args: args
                    .iter()
                    .map(|a| resolve_cols(a, env, r))
                    .collect::<Result<_>>()?,
            }
        }
        Expr::ScalarCall { f, args } => Expr::ScalarCall {
            f: *f,
            args: args
                .iter()
                .map(|a| resolve_cols(a, env, r))
                .collect::<Result<_>>()?,
        },
    })
}

/// `DISTINCT` inside a non-aggregate call, with PostgreSQL's wording.
fn not_an_aggregate(name: &str) -> SqlError {
    SqlError::Type(format!(
        "DISTINCT specified, but {name} is not an aggregate function"
    ))
}

/// The PostgreSQL grouping-rule error for a raw column reference that is
/// neither grouped nor inside an aggregate.
fn ungrouped_column(table: Option<&str>, name: &str) -> SqlError {
    let qualified = match table {
        Some(t) => format!("{t}.{name}"),
        None => name.to_string(),
    };
    SqlError::Grouping(format!(
        "column \"{qualified}\" must appear in the GROUP BY clause \
         or be used in an aggregate function"
    ))
}

/// Are these two expressions the same grouping expression? Structural
/// equality, except bare column references compare by resolved position,
/// so `SELECT t.a … GROUP BY a` matches.
pub(crate) fn same_group_expr(env: &Env<'_>, a: &Expr, b: &Expr) -> bool {
    if a == b {
        return true;
    }
    if let (
        Expr::Column {
            table: ta,
            name: na,
        },
        Expr::Column {
            table: tb,
            name: nb,
        },
    ) = (a, b)
    {
        if let (Ok(ia), Ok(ib)) = (
            env.resolve(ta.as_deref(), na),
            env.resolve(tb.as_deref(), nb),
        ) {
            return ia == ib;
        }
    }
    false
}

/// Lower one output/HAVING/ORDER BY expression of a grouped query:
/// subtrees matching a GROUP BY expression become `GroupKey` references,
/// aggregate calls are deduplicated into `aggs` and become `Agg`
/// references, and any column reference left over is a grouping error.
fn lower_grouped(
    e: &Expr,
    keys: &[Expr],
    env: &Env<'_>,
    aggs: &mut Vec<AggCall>,
    r: &mut Resolver<'_>,
) -> Result<Expr> {
    if let Some(i) = keys.iter().position(|k| same_group_expr(env, k, e)) {
        return Ok(Expr::GroupKey(i));
    }
    Ok(match e {
        Expr::Function {
            name,
            args,
            distinct,
        } if AGGREGATE_FUNCTIONS.contains(&name.as_str()) => {
            if args.iter().any(contains_aggregate) {
                return Err(SqlError::Grouping(
                    "aggregate function calls cannot be nested".into(),
                ));
            }
            let op = match (name.as_str(), args.len()) {
                ("count", 0) => AggOp::CountStar,
                ("count", 1) if *distinct => AggOp::CountDistinct,
                ("count", 1) => AggOp::Count,
                (n, _) if *distinct => {
                    return Err(SqlError::Grouping(format!(
                        "DISTINCT is not implemented for {n}()"
                    )))
                }
                ("sum", 1) => AggOp::Sum,
                ("avg", 1) => AggOp::Avg,
                ("min", 1) => AggOp::Min,
                ("max", 1) => AggOp::Max,
                (n, _) => return Err(SqlError::Type(format!("{n}() takes exactly one argument"))),
            };
            let call = AggCall {
                op,
                args: args
                    .iter()
                    .map(|a| resolve_cols(a, env, r))
                    .collect::<Result<_>>()?,
            };
            let k = match aggs.iter().position(|c| *c == call) {
                Some(k) => k,
                None => {
                    aggs.push(call);
                    aggs.len() - 1
                }
            };
            Expr::Agg(k)
        }
        Expr::Column { table, name } => return Err(ungrouped_column(table.as_deref(), name)),
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) | Expr::GroupKey(_) | Expr::Agg(_) => {
            e.clone()
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(lower_grouped(expr, keys, env, aggs, r)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(lower_grouped(left, keys, env, aggs, r)?),
            right: Box::new(lower_grouped(right, keys, env, aggs, r)?),
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(lower_grouped(expr, keys, env, aggs, r)?),
            ty: *ty,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(lower_grouped(expr, keys, env, aggs, r)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(lower_grouped(expr, keys, env, aggs, r)?),
            list: list
                .iter()
                .map(|e| lower_grouped(e, keys, env, aggs, r))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            if *distinct {
                return Err(not_an_aggregate(name));
            }
            Expr::ScalarCall {
                f: r.function(name)?,
                args: args
                    .iter()
                    .map(|a| lower_grouped(a, keys, env, aggs, r))
                    .collect::<Result<_>>()?,
            }
        }
        Expr::ScalarCall { f, args } => Expr::ScalarCall {
            f: *f,
            args: args
                .iter()
                .map(|a| lower_grouped(a, keys, env, aggs, r))
                .collect::<Result<_>>()?,
        },
    })
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Render a compiled plan as indented text lines (one per output row of
/// `EXPLAIN`). Runs at compile time: the rendered plan is exactly the
/// plan the statement would execute with, under the current statistics.
pub(crate) fn render_plan(stmt: &Stmt, plan: &PhysicalPlan) -> Result<Vec<String>> {
    match plan {
        PhysicalPlan::StaticSelect(p) => Ok(render_static(p)),
        PhysicalPlan::DynamicSelect => {
            let Stmt::Select(sel) = stmt else {
                unreachable!("dynamic plans compile from SELECT statements");
            };
            Ok(render_dynamic(sel))
        }
        PhysicalPlan::Insert(ip) => {
            let child = match (&ip.source, stmt) {
                (
                    Some(src),
                    Stmt::Insert {
                        source: InsertSource::Select(sel),
                        ..
                    },
                ) => render_plan(&Stmt::Select((**sel).clone()), src)?,
                _ => vec!["Values".to_string()],
            };
            let mut lines = vec![format!("Insert on {}", ip.table)];
            lines.extend(indent_child(child));
            Ok(lines)
        }
        PhysicalPlan::Update(p) => Ok(render_dml("Update", p)),
        PhysicalPlan::Delete(p) => Ok(render_dml("Delete", p)),
        PhysicalPlan::Explain(_) | PhysicalPlan::Other => Err(SqlError::Parse(
            "EXPLAIN is only supported for SELECT, INSERT, UPDATE and DELETE".into(),
        )),
    }
}

/// Nest a child node: `->` marker on its first line, matching indent on
/// the rest.
fn indent_child(lines: Vec<String>) -> Vec<String> {
    lines
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                format!("  ->  {l}")
            } else {
                format!("      {l}")
            }
        })
        .collect()
}

/// Name a slot of the pruned concatenated row layout, qualified by table
/// when more than one is scanned.
fn pruned_slot_name(p: &StaticSelectPlan, s: usize) -> String {
    let mut off = 0;
    for (ti, used) in p.used_cols.iter().enumerate() {
        if s < off + used.len() {
            let col = &p.schemas[ti][used[s - off]];
            return if p.used_cols.len() == 1 {
                col.clone()
            } else {
                format!("{}.{col}", p.tables[ti])
            };
        }
        off += used.len();
    }
    format!("?column{s}?")
}

fn render_static(p: &StaticSelectPlan) -> Vec<String> {
    let pruned = |s: usize| pruned_slot_name(p, s);
    let scan = if p.tables.len() == 1 {
        let t = &p.tables[0];
        match &p.zero {
            Some(z) => {
                // Zero-copy scan: expressions are in the full layout.
                let full = |s: usize| {
                    p.schemas[0]
                        .get(s)
                        .cloned()
                        .unwrap_or_else(|| format!("?column{s}?"))
                };
                let mut lines = match &z.access {
                    Some(a) => {
                        let conds = a
                            .conds
                            .iter()
                            .map(|(c, op, v)| {
                                format!(
                                    "({} {} {})",
                                    full(*c),
                                    op_str(*op),
                                    render_expr(v, &full, &p.ops.fn_names)
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(" AND ");
                        vec![
                            format!("IndexScan using {} on {t}", a.index_name),
                            format!("  Index Cond: {conds}"),
                        ]
                    }
                    None => vec![format!("SeqScan on {t}")],
                };
                if let Some(w) = &z.where_clause {
                    lines.push(format!(
                        "  Filter: {}",
                        render_expr(w, &full, &p.ops.fn_names)
                    ));
                }
                lines.push(format!("  Vectorized: {}", z.vectorized));
                if z.vectorized
                    && matches!(z.kind, ZeroScanKind::Select { .. })
                    && p.ops.limit != usize::MAX
                {
                    // Bounded ordered SELECT on the batch path: the sort
                    // is a top-K heap, not a full sort.
                    let mut topk = vec![format!("Top-K (k={})", p.ops.limit)];
                    topk.extend(indent_child(lines));
                    lines = topk;
                }
                lines
            }
            None => {
                let mut lines = vec![format!("SeqScan on {t}")];
                if let Some(w) = &p.ops.where_clause {
                    lines.push(format!(
                        "  Filter: {}",
                        render_expr(w, &pruned, &p.ops.fn_names)
                    ));
                }
                lines
            }
        }
    } else {
        let children: Vec<String> = p
            .tables
            .iter()
            .flat_map(|t| indent_child(vec![format!("SeqScan on {t}")]))
            .collect();
        let mut lines = match &p.hash_join {
            Some(hj) => vec![
                "HashJoin".to_string(),
                format!(
                    "  Hash Cond: ({} = {})",
                    pruned(hj.left_slot),
                    pruned(hj.right_slot)
                ),
            ],
            None => vec!["NestedLoop".to_string()],
        };
        if let Some(w) = &p.ops.where_clause {
            lines.push(format!(
                "  Filter: {}",
                render_expr(w, &pruned, &p.ops.fn_names)
            ));
        }
        lines.extend(children);
        lines
    };
    wrap_aggregate(p.ops.group.is_some(), scan)
}

/// Render a dynamic SELECT (set-returning functions in FROM): the scan
/// schema is unknown until execution, so only the shape is shown.
fn render_dynamic(sel: &SelectStmt) -> Vec<String> {
    let name = |s: usize| format!("?column{s}?");
    let scans: Vec<Vec<String>> = sel
        .from
        .iter()
        .map(|it| {
            vec![match it {
                FromItem::Table { name, .. } => format!("SeqScan on {name}"),
                FromItem::Function { name, .. } => format!("FunctionScan on {name}"),
            }]
        })
        .collect();
    let filter = joined_where(sel).map(|w| format!("  Filter: {}", render_expr(&w, &name, &[])));
    let lines = if scans.len() == 1 {
        let mut l = scans.into_iter().next().unwrap();
        l.extend(filter);
        l
    } else {
        let mut l = vec!["NestedLoop".to_string()];
        l.extend(filter);
        for s in scans {
            l.extend(indent_child(s));
        }
        l
    };
    let grouped = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));
    wrap_aggregate(grouped, lines)
}

fn wrap_aggregate(grouped: bool, scan: Vec<String>) -> Vec<String> {
    if grouped {
        let mut lines = vec!["Aggregate".to_string()];
        lines.extend(indent_child(scan));
        lines
    } else {
        scan
    }
}

fn render_dml(verb: &str, p: &DmlPlan) -> Vec<String> {
    let name = |s: usize| {
        p.schema_cols
            .get(s)
            .cloned()
            .unwrap_or_else(|| format!("?column{s}?"))
    };
    let mut scan = vec![format!("SeqScan on {}", p.table)];
    if let Some(w) = &p.where_clause {
        scan.push(format!("  Filter: {}", render_expr(w, &name, &p.fn_names)));
    }
    let mut lines = vec![format!("{verb} on {}", p.table)];
    lines.extend(indent_child(scan));
    lines
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Concat => "||",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

/// Render one plan expression for EXPLAIN output. `name` maps a slot to
/// its column name in the layout the expression was resolved against;
/// `fns` maps scalar-call indices back to function names.
fn render_expr(e: &Expr, name: &dyn Fn(usize) -> String, fns: &[String]) -> String {
    let list = |args: &[Expr]| {
        args.iter()
            .map(|a| render_expr(a, name, fns))
            .collect::<Vec<_>>()
            .join(", ")
    };
    match e {
        Expr::Literal(Value::Text(s)) => format!("'{s}'"),
        Expr::Literal(v) => format!("{v}"),
        Expr::Param(n) => format!("${n}"),
        Expr::Slot(i) => name(*i),
        Expr::Column { table, name: n } => match table {
            Some(t) => format!("{t}.{n}"),
            None => n.clone(),
        },
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => format!("-{}", render_expr(expr, name, fns)),
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => format!("NOT {}", render_expr(expr, name, fns)),
        Expr::Binary { op, left, right } => format!(
            "({} {} {})",
            render_expr(left, name, fns),
            op_str(*op),
            render_expr(right, name, fns)
        ),
        Expr::Cast { expr, ty } => format!("({}::{})", render_expr(expr, name, fns), ty.name()),
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            render_expr(expr, name, fns),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList {
            expr,
            list: items,
            negated,
        } => format!(
            "({} {}IN ({}))",
            render_expr(expr, name, fns),
            if *negated { "NOT " } else { "" },
            list(items)
        ),
        Expr::Function {
            name: n,
            args,
            distinct,
        } => format!(
            "{n}({}{})",
            if *distinct { "DISTINCT " } else { "" },
            list(args)
        ),
        Expr::ScalarCall { f, args } => {
            let n = fns.get(*f).map(String::as_str).unwrap_or("?fn?");
            format!("{n}({})", list(args))
        }
        Expr::GroupKey(i) => format!("?group{i}?"),
        Expr::Agg(i) => format!("?agg{i}?"),
    }
}

/// Output column name for an unaliased projection.
fn derived_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        Expr::Cast { expr, .. } => derived_name(expr),
        _ => "?column?".into(),
    }
}
