//! Table statistics backing the cost-based planner: per-table row
//! counts and per-column NDV / min / max / null counts, collected by
//! `ANALYZE` (or `pgfmu_analyze()`) and refreshed automatically once a
//! table has churned past a staleness threshold since its last pass.

use std::collections::HashSet;

use crate::exec::KeyAtom;
use crate::table::{Snapshot, Table};
use crate::value::Value;

/// Statistics for one column of one table.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub(crate) ndv: u64,
    /// Smallest numeric value (ints, floats, timestamps, intervals as
    /// `f64`); `None` for non-numeric columns or all-NULL columns.
    pub(crate) min: Option<f64>,
    /// Largest numeric value (see [`ColumnStats::min`]).
    pub(crate) max: Option<f64>,
    /// Number of NULLs.
    pub(crate) null_count: u64,
}

/// Statistics for one table, as of one `ANALYZE` pass.
#[derive(Debug, Clone, Default)]
pub(crate) struct TableStats {
    /// Snapshot-visible rows at analyze time.
    pub(crate) row_count: u64,
    /// Per-column stats, in schema order.
    pub(crate) columns: Vec<ColumnStats>,
    /// The table's modification counter when this pass ran — the
    /// staleness baseline.
    pub(crate) mods_at_analyze: u64,
}

/// How much churn (versions appended / ended / overwritten) a table may
/// accumulate before its stats are considered stale: a fixed floor plus
/// a quarter of the analyzed row count.
fn staleness_budget(row_count: u64) -> u64 {
    256 + row_count / 4
}

impl TableStats {
    /// True when enough writes happened since the last pass that the
    /// planner should re-analyze before costing.
    pub(crate) fn stale(&self, mod_count: u64) -> bool {
        mod_count.saturating_sub(self.mods_at_analyze) > staleness_budget(self.row_count)
    }

    /// Estimated rows matching an equality probe on `column`.
    pub(crate) fn est_eq_rows(&self, column: usize) -> f64 {
        let n = self.row_count as f64;
        match self.columns.get(column) {
            Some(c) if c.ndv > 0 => (n / c.ndv as f64).max(1.0),
            _ => (n / 10.0).max(1.0),
        }
    }

    /// Estimated rows matching a range probe on `column`. Known numeric
    /// bounds interpolate against the column's min/max; a bound whose
    /// value is unknown until execution (a `$n` parameter, a non-numeric
    /// literal) contributes a fixed third of selectivity instead.
    pub(crate) fn est_range_rows(&self, column: usize, lo: Bound, hi: Bound) -> f64 {
        let n = self.row_count as f64;
        let c = self.columns.get(column);
        let span = c.and_then(|c| match (c.min, c.max) {
            (Some(min), Some(max)) if max > min => Some((min, max)),
            _ => None,
        });
        let mut frac = match span {
            Some((min, max)) => {
                let width = max - min;
                let lo = match lo {
                    Bound::Known(v) => v.clamp(min, max),
                    Bound::Unknown | Bound::None => min,
                };
                let hi = match hi {
                    Bound::Known(v) => v.clamp(min, max),
                    Bound::Unknown | Bound::None => max,
                };
                ((hi - lo) / width).clamp(0.0, 1.0)
            }
            None => {
                let mut frac = 1.0;
                if matches!(lo, Bound::Known(_)) {
                    frac /= 3.0;
                }
                if matches!(hi, Bound::Known(_)) {
                    frac /= 3.0;
                }
                frac
            }
        };
        if matches!(lo, Bound::Unknown) {
            frac /= 3.0;
        }
        if matches!(hi, Bound::Unknown) {
            frac /= 3.0;
        }
        (n * frac).max(1.0)
    }
}

/// One side of a range probe, as seen at plan time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Bound {
    /// No conjunct bounds this side.
    None,
    /// Bounded by a value known at plan time.
    Known(f64),
    /// Bounded, but the value only arrives at execution (a `$n` bind).
    Unknown,
}

/// Numeric projection of a value for min/max tracking.
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) if !f.is_nan() => Some(*f),
        Value::Timestamp(t) | Value::Interval(t) => Some(*t as f64),
        _ => None,
    }
}

/// One full statistics pass over the rows visible to `snap`.
pub(crate) fn analyze_table(table: &Table, snap: Snapshot, mod_count: u64) -> TableStats {
    let ncols = table.schema.len();
    let mut distinct: Vec<HashSet<KeyAtom>> = (0..ncols).map(|_| HashSet::new()).collect();
    let mut stats = TableStats {
        row_count: 0,
        columns: vec![ColumnStats::default(); ncols],
        mods_at_analyze: mod_count,
    };
    let view = table.view();
    for row in view.visible(snap) {
        stats.row_count += 1;
        for (c, v) in row.iter().enumerate() {
            let cs = &mut stats.columns[c];
            if v.is_null() {
                cs.null_count += 1;
                continue;
            }
            distinct[c].insert(KeyAtom::from_value(v));
            if let Some(f) = numeric(v) {
                cs.min = Some(cs.min.map_or(f, |m| m.min(f)));
                cs.max = Some(cs.max.map_or(f, |m| m.max(f)));
            }
        }
    }
    for (c, set) in distinct.into_iter().enumerate() {
        stats.columns[c].ndv = set.len() as u64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};
    use crate::value::DataType;

    fn sample() -> Table {
        let mut t = Table::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("x", DataType::Float),
                Column::new("s", DataType::Text),
            ])
            .unwrap(),
        );
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i % 5),
                if i == 3 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                },
                Value::Text(format!("s{}", i % 2)),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn analyze_counts_rows_ndv_minmax_nulls() {
        let t = sample();
        let s = analyze_table(&t, Snapshot::latest(), 10);
        assert_eq!(s.row_count, 10);
        assert_eq!(s.columns[0].ndv, 5);
        assert_eq!(s.columns[0].min, Some(0.0));
        assert_eq!(s.columns[0].max, Some(4.0));
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[1].ndv, 9);
        assert_eq!(s.columns[2].ndv, 2);
        assert_eq!(s.columns[2].min, None, "text has no numeric min");
        assert_eq!(s.mods_at_analyze, 10);
    }

    #[test]
    fn staleness_threshold() {
        let s = TableStats {
            row_count: 1000,
            mods_at_analyze: 100,
            ..Default::default()
        };
        assert!(!s.stale(100));
        assert!(!s.stale(100 + 256 + 250));
        assert!(s.stale(100 + 256 + 251));
    }

    #[test]
    fn estimates() {
        let t = sample();
        let s = analyze_table(&t, Snapshot::latest(), 0);
        assert_eq!(s.est_eq_rows(0), 2.0); // 10 rows / 5 ndv
                                           // Range k in [0, 2] over min 0 max 4 → half the table.
        assert!((s.est_range_rows(0, Bound::Known(0.0), Bound::Known(2.0)) - 5.0).abs() < 1e-9);
        // Known bound on a text column (no numeric span): default fraction.
        assert!(s.est_range_rows(2, Bound::Known(0.0), Bound::None) <= 10.0 / 3.0 + 1e-9);
        // A `$n` bound discounts selectivity even with a known span:
        // two unknown bounds estimate a ninth of the table, not all of it.
        let est = s.est_range_rows(0, Bound::Unknown, Bound::Unknown);
        assert!((est - 10.0 / 9.0).abs() < 1e-9, "{est}");
    }
}
