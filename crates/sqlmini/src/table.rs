//! Schemas, rows and in-memory tables.
//!
//! Version storage is **sharded**: a table holds `S` append-only arenas,
//! each behind its own lock, so writers appending to different shards
//! never contend. Rows are addressed by a stable physical row id
//! (`Rid`) that packs the shard number into the high bits and the
//! arena-local position into the low bits — at `S = 1` a rid *is* the
//! arena position, reproducing the unsharded layout bit-for-bit.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{Result, SqlError};
use crate::index::{key_of, unique_violation, KeySpace, SecondaryIndex};
use crate::value::{DataType, Value};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (stored lower-case; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Create a column (name is normalized to lower case).
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Self {
        Column {
            name: name.as_ref().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns, rejecting duplicates.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(SqlError::Constraint(format!(
                    "duplicate column name \"{}\"",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// `end` stamp of a version that has not been deleted or superseded.
///
/// Note that `LIVE` has the [`UNCOMMITTED`] bit set, so visibility checks
/// must test for `LIVE` before interpreting the uncommitted bit.
pub(crate) const LIVE: u64 = u64::MAX;

/// High bit of a begin/end stamp: the stamp is a transaction id, not a
/// commit timestamp. `UNCOMMITTED | txid` marks a pending write that only
/// the owning transaction can see (begin) or still sees (end).
pub(crate) const UNCOMMITTED: u64 = 1 << 63;

/// `begin` stamp of a version that no snapshot can ever see again (a
/// rolled-back insert). Transaction ids start at 1, so `UNCOMMITTED | 0`
/// never collides with a real pending write.
pub(crate) const TOMBSTONE: u64 = UNCOMMITTED;

/// The read position of one statement or cursor: every version committed
/// at or before `ts` is visible, plus this transaction's own pending
/// writes when `txid != 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Snapshot {
    /// Commit-clock value pinned when the snapshot was taken.
    pub ts: u64,
    /// Owning transaction id, or 0 outside an explicit transaction.
    pub txid: u64,
}

impl Snapshot {
    /// A snapshot that sees every committed version and no pending ones —
    /// the view a brand-new statement would get "now".
    #[cfg(test)]
    pub(crate) fn latest() -> Self {
        Snapshot {
            ts: UNCOMMITTED - 1,
            txid: 0,
        }
    }
}

/// One version of one row: the payload plus the half-open commit-time
/// interval `[begin, end)` during which it is the current version.
#[derive(Debug, Clone)]
pub(crate) struct VersionedRow {
    /// Commit timestamp of the writer that created this version, or
    /// `UNCOMMITTED | txid` while that writer is still in flight.
    pub begin: u64,
    /// Commit timestamp of the writer that deleted/superseded it,
    /// [`LIVE`] while current, or `UNCOMMITTED | txid` for a pending
    /// delete.
    pub end: u64,
    /// The row payload.
    pub data: Row,
}

impl VersionedRow {
    /// The MVCC visibility rule: created by us or committed at-or-before
    /// our snapshot, and not yet deleted as far as our snapshot can tell.
    pub(crate) fn visible(&self, snap: Snapshot) -> bool {
        let begin_ok = if self.begin & UNCOMMITTED != 0 {
            snap.txid != 0 && self.begin == UNCOMMITTED | snap.txid
        } else {
            self.begin <= snap.ts
        };
        if !begin_ok {
            return false;
        }
        if self.end == LIVE {
            return true;
        }
        if self.end & UNCOMMITTED != 0 {
            // Another transaction's pending delete does not hide the row;
            // our own does.
            !(snap.txid != 0 && self.end == UNCOMMITTED | snap.txid)
        } else {
            self.end > snap.ts
        }
    }

    /// True when no current or future snapshot can see this version:
    /// a rolled-back insert, or a deletion committed at or before the
    /// oldest snapshot still alive.
    fn reclaimable(&self, watermark: u64) -> bool {
        self.begin == TOMBSTONE
            || (self.end != LIVE && self.end & UNCOMMITTED == 0 && self.end <= watermark)
    }

    /// Dead for accounting purposes: it can eventually be reclaimed once
    /// the watermark passes it.
    fn dead(&self) -> bool {
        self.begin == TOMBSTONE || (self.end != LIVE && self.end & UNCOMMITTED == 0)
    }
}

/// Compaction trigger: at least this many dead versions, and at least
/// half the heap dead.
const GC_MIN_DEAD: usize = 64;

// ---- physical row ids ------------------------------------------------------

/// A stable physical row id: shard number in the high bits, arena-local
/// position in the low bits. Rids compare in **shard-major ascending
/// order**, so every "ascending version positions" invariant (index
/// probes, undo logs, superseded lists) carries over unchanged; at one
/// shard a rid equals the arena position exactly.
pub(crate) type Rid = usize;

/// Bits reserved for the arena-local position (64-bit targets only).
const RID_SHARD_SHIFT: u32 = 48;
/// Mask extracting the arena-local position from a rid.
const RID_POS_MASK: usize = (1 << RID_SHARD_SHIFT) - 1;

/// Pack a shard number and arena-local position into a rid.
pub(crate) fn make_rid(shard: usize, pos: usize) -> Rid {
    debug_assert!(pos <= RID_POS_MASK);
    (shard << RID_SHARD_SHIFT) | pos
}

/// Shard number of a rid.
pub(crate) fn rid_shard(rid: Rid) -> usize {
    rid >> RID_SHARD_SHIFT
}

/// Arena-local position of a rid.
pub(crate) fn rid_pos(rid: Rid) -> usize {
    rid & RID_POS_MASK
}

// ---- home-shard routing ----------------------------------------------------

/// Round-robin seed for thread home slots.
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home slot, assigned on first use. All appends a
    /// thread makes to a given table land in `slot % shard_count`, so a
    /// single-threaded workload preserves insertion order exactly (one
    /// shard) while distinct writer threads spread across shards.
    static HOME_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's home slot (assigned round-robin on first use).
fn home_slot() -> usize {
    HOME_SLOT.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

// ---- version arenas --------------------------------------------------------

/// One shard's version storage: an append-only heap of row versions plus
/// the per-shard slice of every secondary index (local positions).
#[derive(Debug, Clone, Default)]
struct Arena {
    /// Version storage. Append-only except for [`Arena::compact`], so
    /// local positions stay valid while the owning shard is pinned.
    versions: Vec<VersionedRow>,
    /// Count of versions whose data can eventually be reclaimed.
    dead: usize,
    /// Count of versions carrying an in-flight transaction's stamp — an
    /// uncommitted begin or a pending delete. Tombstones are excluded
    /// (they are counted in `dead`).
    pending: usize,
    /// Highest committed begin stamp ever appended (monotone; may
    /// overstate after removals, which only makes the quiescence check
    /// conservative).
    max_begin: u64,
    /// This shard's slice of each secondary index, ordinal-aligned with
    /// the table's `index_meta` and keyed by **local** positions.
    indexes: Vec<SecondaryIndex>,
}

impl Arena {
    /// Every version in this arena is visible to `snap`: nothing dead,
    /// nothing pending, and nothing committed after the snapshot.
    fn all_visible(&self, snap: Snapshot) -> bool {
        self.dead == 0 && self.pending == 0 && self.max_begin <= snap.ts
    }

    /// Append a version (already coerced) and return its local position.
    fn push(&mut self, begin: u64, data: Row) -> usize {
        if begin & UNCOMMITTED != 0 {
            self.pending += 1;
        } else if begin > self.max_begin {
            self.max_begin = begin;
        }
        self.versions.push(VersionedRow {
            begin,
            end: LIVE,
            data,
        });
        let pos = self.versions.len() - 1;
        let data = &self.versions[pos].data;
        for ix in &mut self.indexes {
            ix.insert(pos, &data[ix.column]);
        }
        pos
    }

    /// Stamp a version's end (delete/supersede it as of `stamp`).
    fn end(&mut self, pos: usize, stamp: u64) {
        self.versions[pos].end = stamp;
        if stamp & UNCOMMITTED == 0 {
            self.dead += 1;
        } else {
            self.pending += 1;
        }
    }

    /// Commit a pending insert: `UNCOMMITTED | txid` → `cts`.
    fn commit_begin(&mut self, pos: usize, txid: u64, cts: u64) {
        if self.versions[pos].begin == UNCOMMITTED | txid {
            self.versions[pos].begin = cts;
            self.pending -= 1;
            if cts > self.max_begin {
                self.max_begin = cts;
            }
        }
    }

    /// Commit a pending delete: `UNCOMMITTED | txid` → `cts`.
    fn commit_end(&mut self, pos: usize, txid: u64, cts: u64) {
        if self.versions[pos].end == UNCOMMITTED | txid {
            self.versions[pos].end = cts;
            self.pending -= 1;
            self.dead += 1;
        }
    }

    /// Undo a pending delete: the version is current again.
    fn revert_end(&mut self, pos: usize, txid: u64) {
        if self.versions[pos].end == UNCOMMITTED | txid {
            self.versions[pos].end = LIVE;
            self.pending -= 1;
        }
    }

    /// Undo a pending insert: tombstone the version.
    fn revert_insert(&mut self, pos: usize, txid: u64) {
        if self.versions[pos].begin == UNCOMMITTED | txid {
            self.versions[pos].begin = TOMBSTONE;
            self.pending -= 1;
            self.dead += 1;
        }
    }

    /// Overwrite a version's payload in place (no garbage created).
    fn overwrite(&mut self, pos: usize, cols: &[usize], vals: Vec<Value>) {
        for (v, &c) in vals.into_iter().zip(cols) {
            let old = std::mem::replace(&mut self.versions[pos].data[c], v);
            let new = &self.versions[pos].data[c];
            for ix in &mut self.indexes {
                if ix.column == c {
                    ix.reindex(pos, &old, new);
                }
            }
        }
    }

    /// Physically remove the given ascending local positions, renumbering
    /// the survivors (and every index entry above a removed position).
    /// The removed versions are current rows, so `dead` is untouched.
    fn remove(&mut self, sorted: &[usize]) {
        let mut doomed = sorted.iter().copied().peekable();
        let mut i = 0usize;
        self.versions.retain(|_| {
            let hit = doomed.peek() == Some(&i);
            if hit {
                doomed.next();
            }
            i += 1;
            !hit
        });
        for ix in &mut self.indexes {
            ix.remove_renumber(sorted);
        }
    }

    /// Drop every version no snapshot at or after `watermark` can see,
    /// returning the number reclaimed. The caller has checked pins.
    fn compact(&mut self, watermark: u64) -> usize {
        let removed: Vec<usize> = self
            .versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.reclaimable(watermark))
            .map(|(i, _)| i)
            .collect();
        if removed.is_empty() {
            return 0;
        }
        self.versions.retain(|v| !v.reclaimable(watermark));
        for ix in &mut self.indexes {
            ix.remove_renumber(&removed);
        }
        self.dead = self.versions.iter().filter(|v| v.dead()).count();
        removed.len()
    }

    /// Number of current committed rows in this arena.
    fn committed_len(&self) -> usize {
        if self.dead == 0 && self.pending == 0 {
            return self.versions.len();
        }
        self.versions
            .iter()
            .filter(|v| v.begin & UNCOMMITTED == 0 && (v.end == LIVE || v.end & UNCOMMITTED != 0))
            .count()
    }
}

/// One independently locked shard: an arena plus its pin count.
#[derive(Debug, Default)]
struct Shard {
    /// The shard's version storage. Writers appending to different
    /// shards hold different locks and proceed in parallel.
    arena: RwLock<Arena>,
    /// Holders of local positions that outlive a single guard (streaming
    /// cursors, open transactions, snapshot DML). Compaction skips a
    /// shard while it is pinned, because compaction renumbers positions.
    pins: AtomicUsize,
}

/// Descriptor of one secondary index: its per-shard slices live inside
/// each arena (ordinal-aligned with this list), so readers can consult
/// name/column/uniqueness without taking any shard lock.
#[derive(Debug, Clone)]
pub(crate) struct IndexMeta {
    /// Index name (globally unique across the database).
    pub(crate) name: String,
    /// Indexed column's ordinal in the table schema.
    pub(crate) column: usize,
    /// Rejects duplicate non-NULL keys among currently-live versions.
    pub(crate) unique: bool,
}

/// Could this version still be (or become) current? Committed-dead
/// versions and tombstones cannot conflict; live versions always do;
/// a pending delete by *another* transaction may roll back, so the
/// version still conflicts — only our own pending delete clears it.
fn conflict_live(v: &VersionedRow, txid: u64) -> bool {
    if v.begin == TOMBSTONE {
        return false;
    }
    if v.end == LIVE {
        return true;
    }
    v.end & UNCOMMITTED != 0 && (txid == 0 || v.end != UNCOMMITTED | txid)
}

/// An in-memory heap table: a schema plus sharded append-only version
/// storage. Visibility of a version to a given `Snapshot` is decided per
/// read; dead versions linger until per-shard compaction reclaims them.
///
/// Lock discipline: shard locks are only ever acquired by a thread that
/// holds the table's outer `RwLock` guard (read or write), and always in
/// ascending shard order when more than one is taken. Exclusive (`&mut`)
/// access reaches arenas through `get_mut`, which takes no lock at all —
/// so the single-shard configuration pays nothing over the unsharded
/// design.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    /// The version shards. Grown once at registration time
    /// ([`Table::set_shard_count`]); never shrunk or reordered, so shard
    /// numbers embedded in rids stay valid forever.
    shards: Vec<Shard>,
    /// Secondary-index descriptors, ordinal-aligned with every arena's
    /// `indexes` vector. Mutated only under the outer write guard.
    index_meta: Vec<IndexMeta>,
    /// Monotone count of version-payload modifications — the statistics
    /// layer's staleness signal (see `crate::stats`). Atomic because
    /// concurrent appenders bump it under shard (not outer-write) locks.
    mod_count: AtomicU64,
}

impl Default for Table {
    fn default() -> Self {
        Table::new(Schema::default())
    }
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            shards: self
                .shards
                .iter()
                .map(|s| Shard {
                    arena: RwLock::new(s.arena.read().clone()),
                    pins: AtomicUsize::new(0),
                })
                .collect(),
            index_meta: self.index_meta.clone(),
            mod_count: AtomicU64::new(self.mod_count.load(Ordering::Relaxed)),
        }
    }
}

impl Table {
    /// Create an empty single-shard table. `Database::create_table` grows
    /// the shard count to the configured value at registration time.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            shards: vec![Shard::default()],
            index_meta: Vec::new(),
            mod_count: AtomicU64::new(0),
        }
    }

    /// Number of version shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Grow the shard count to `n` (never shrinks). Existing rows keep
    /// their rids; new shards start empty, with an empty slice of every
    /// existing index. Must only be called before the table's handle is
    /// shared (registration time): live pins do not extend to shards
    /// that did not exist when they were taken.
    pub(crate) fn set_shard_count(&mut self, n: usize) {
        while self.shards.len() < n {
            let indexes = self
                .index_meta
                .iter()
                .map(|m| SecondaryIndex::new(m.column))
                .collect();
            self.shards.push(Shard {
                arena: RwLock::new(Arena {
                    indexes,
                    ..Arena::default()
                }),
                pins: AtomicUsize::new(0),
            });
        }
    }

    /// The calling thread's home shard — where its appends land.
    fn home_shard(&self) -> usize {
        home_slot() % self.shards.len()
    }

    /// Validate arity and coerce each value to its column type, without
    /// storing anything — the error-before-mutation half of every insert.
    pub(crate) fn coerce_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Constraint(format!(
                "INSERT has {} values but table has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        row.iter()
            .zip(&self.schema.columns)
            .map(|(v, c)| {
                v.coerce_to(c.dtype)
                    .map_err(|e| SqlError::Type(format!("column \"{}\": {e}", c.name)))
            })
            .collect()
    }

    /// Insert a row, coercing each value to its column type. The version
    /// is created visible to every snapshot (begin 0) — the direct table
    /// building path used before a table is registered.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        let coerced = self.coerce_row(row)?;
        self.push_version(0, coerced);
        Ok(())
    }

    /// Exclusive access to the arena holding `rid` (no lock taken).
    fn arena_of(&mut self, rid: Rid) -> &mut Arena {
        self.shards[rid_shard(rid)].arena.get_mut()
    }

    /// Append a version (already coerced) to the calling thread's home
    /// shard and return its rid.
    pub(crate) fn push_version(&mut self, begin: u64, data: Row) -> Rid {
        let s = self.home_shard();
        let pos = self.shards[s].arena.get_mut().push(begin, data);
        *self.mod_count.get_mut() += 1;
        make_rid(s, pos)
    }

    /// Append a version to a specific shard (tests exercising cross-shard
    /// behavior deterministically).
    #[cfg(test)]
    pub(crate) fn push_to_shard(&mut self, shard: usize, begin: u64, data: Row) -> Rid {
        let pos = self.shards[shard].arena.get_mut().push(begin, data);
        *self.mod_count.get_mut() += 1;
        make_rid(shard, pos)
    }

    /// Stamp a version's end (delete/supersede it as of `stamp`). The
    /// index entry stays — probes re-check visibility — but the churn
    /// counts toward statistics staleness.
    pub(crate) fn end_version(&mut self, rid: Rid, stamp: u64) {
        self.arena_of(rid).end(rid_pos(rid), stamp);
        *self.mod_count.get_mut() += 1;
    }

    /// Commit a pending insert: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_begin(&mut self, rid: Rid, txid: u64, cts: u64) {
        self.arena_of(rid).commit_begin(rid_pos(rid), txid, cts);
    }

    /// Commit a pending delete: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_end(&mut self, rid: Rid, txid: u64, cts: u64) {
        self.arena_of(rid).commit_end(rid_pos(rid), txid, cts);
    }

    /// Undo a pending delete: the version is current again.
    pub(crate) fn revert_end(&mut self, rid: Rid, txid: u64) {
        self.arena_of(rid).revert_end(rid_pos(rid), txid);
    }

    /// Undo a pending insert: tombstone the version.
    pub(crate) fn revert_insert(&mut self, rid: Rid, txid: u64) {
        self.arena_of(rid).revert_insert(rid_pos(rid), txid);
    }

    /// A version's current end stamp.
    pub(crate) fn version_end(&mut self, rid: Rid) -> u64 {
        self.arena_of(rid).versions[rid_pos(rid)].end
    }

    /// A version's payload.
    pub(crate) fn version_data(&mut self, rid: Rid) -> &Row {
        let pos = rid_pos(rid);
        &self.arena_of(rid).versions[pos].data
    }

    /// Block compaction of every shard while positions are held across
    /// guard releases. Paired with [`Table::unpin`] (or shard-by-shard
    /// [`Table::unpin_shard`] as a cursor drains).
    pub(crate) fn pin(&self) {
        for s in &self.shards {
            s.pins.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Release a [`Table::pin`] on every shard.
    pub(crate) fn unpin(&self) {
        for s in &self.shards {
            s.pins.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Release one shard of a [`Table::pin`] — a draining cursor frees
    /// each shard for compaction as soon as it has streamed past it.
    pub(crate) fn unpin_shard(&self, shard: usize) {
        self.shards[shard].pins.fetch_sub(1, Ordering::SeqCst);
    }

    /// True when compaction of any shard may renumber positions someone
    /// still holds.
    pub(crate) fn pinned(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.pins.load(Ordering::SeqCst) > 0)
    }

    /// Overwrite the payload of a version in place — the single-version
    /// fast path of an auto-commit UPDATE, which creates no garbage. The
    /// caller must have proven that no snapshot below its commit
    /// timestamp is live and no cursor pins this table (see
    /// `Database::overwrite_safe`). `cols`/`vals` are the SET columns;
    /// any secondary index on a rewritten column moves the version's
    /// entry to its new key.
    pub(crate) fn overwrite_version(&mut self, rid: Rid, cols: &[usize], vals: Vec<Value>) {
        self.arena_of(rid).overwrite(rid_pos(rid), cols, vals);
        *self.mod_count.get_mut() += 1;
    }

    /// Physically remove versions by ascending rid — the single-version
    /// fast path of an auto-commit DELETE. Renumbers each touched arena
    /// (and every index entry above a removed position), so it demands
    /// the same proof as [`Table::overwrite_version`].
    pub(crate) fn remove_versions(&mut self, sorted: &[Rid]) {
        let mut i = 0usize;
        while i < sorted.len() {
            let s = rid_shard(sorted[i]);
            let mut j = i;
            while j < sorted.len() && rid_shard(sorted[j]) == s {
                j += 1;
            }
            let local: Vec<usize> = sorted[i..j].iter().map(|&r| rid_pos(r)).collect();
            self.shards[s].arena.get_mut().remove(&local);
            i = j;
        }
        *self.mod_count.get_mut() += sorted.len() as u64;
    }

    /// True when enough garbage has accumulated to be worth a compaction
    /// pass (the caller still checks pins via [`Table::compact`]).
    pub(crate) fn needs_gc(&mut self) -> bool {
        let (mut dead, mut total) = (0usize, 0usize);
        for s in &mut self.shards {
            let a = s.arena.get_mut();
            dead += a.dead;
            total += a.versions.len();
        }
        dead >= GC_MIN_DEAD && dead * 2 >= total
    }

    /// Drop every version no snapshot at or after `watermark` can see,
    /// shard by shard. Returns the number reclaimed; pinned shards are
    /// skipped (compaction renumbers the survivors).
    pub(crate) fn compact(&mut self, watermark: u64) -> usize {
        let mut freed = 0;
        for s in &mut self.shards {
            if s.pins.load(Ordering::SeqCst) > 0 {
                continue;
            }
            freed += s.arena.get_mut().compact(watermark);
        }
        freed
    }

    /// Per-shard compaction under the outer **read** guard (`vacuum()`):
    /// takes each shard's write lock in turn, so readers and writers of
    /// other shards proceed while one shard compacts. The pin check runs
    /// *after* the shard lock is acquired: a cursor pins its shard before
    /// probing it, and its read-guard release happens-before our
    /// write-guard acquisition, so the pin is visible here.
    pub(crate) fn compact_shards(&self, watermark: u64) -> usize {
        let mut freed = 0;
        for s in &self.shards {
            let mut g = s.arena.write();
            if s.pins.load(Ordering::SeqCst) > 0 {
                continue;
            }
            freed += g.compact(watermark);
        }
        freed
    }

    /// Number of current committed rows (pending writes count as still
    /// current to everyone but their owner).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.arena.read().committed_len())
            .sum()
    }

    /// True when the table holds no current committed rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A read view over every shard (guards held in ascending shard
    /// order) — the reader-side window onto the version storage.
    pub(crate) fn view(&self) -> TableView<'_> {
        TableView {
            arenas: self.shards.iter().map(|s| s.arena.read()).collect(),
        }
    }

    /// A read view over a single shard — cursors refill from one shard
    /// at a time so they only contend with writers of that shard.
    pub(crate) fn shard_view(&self, shard: usize) -> ShardView<'_> {
        ShardView {
            arena: self.shards[shard].arena.read(),
        }
    }

    /// Begin a concurrent append to the calling thread's home shard,
    /// taking only that shard's write lock. `waited` reports whether the
    /// lock was contended (the `write_shard_waits` counter's input).
    pub(crate) fn begin_append(&self) -> ShardAppend<'_> {
        let s = self.home_shard();
        let sh = &self.shards[s];
        let (arena, waited) = match sh.arena.try_write() {
            Some(g) => (g, false),
            None => (sh.arena.write(), true),
        };
        ShardAppend {
            mod_count: &self.mod_count,
            shard: s,
            arena,
            waited,
        }
    }

    /// Exclusively lock the given shards (ascending, deduplicated) for
    /// commit stamping. The group-commit leader holds these while it
    /// advances the commit clock, so no reader whose snapshot is at or
    /// above the new stamp can observe a torn commit.
    pub(crate) fn lock_shards(&self, shards: &[usize]) -> ShardLocks<'_> {
        debug_assert!(shards.windows(2).all(|w| w[0] < w[1]));
        ShardLocks {
            guards: shards
                .iter()
                .map(|&s| (s, self.shards[s].arena.write()))
                .collect(),
        }
    }

    /// Iterate `(rid, version)` pairs visible to `snap` — for DML under
    /// the outer write guard, which needs the rid to stamp the version
    /// it supersedes.
    pub(crate) fn visible_versions(
        &mut self,
        snap: Snapshot,
    ) -> impl Iterator<Item = (Rid, &VersionedRow)> {
        self.shards.iter_mut().enumerate().flat_map(move |(s, sh)| {
            let a: &Arena = sh.arena.get_mut();
            let all = a.all_visible(snap);
            a.versions
                .iter()
                .enumerate()
                .filter(move |(_, v)| all || v.visible(snap))
                .map(move |(p, v)| (make_rid(s, p), v))
        })
    }

    /// Clone the rows visible to `snap` keeping only the given columns,
    /// in `cols` order — the column-pruned snapshot the executor takes
    /// when a scan cannot run zero-copy. Cloning whole rows is the fast
    /// path when every column is read.
    pub(crate) fn project_rows(&self, cols: &[usize], snap: Snapshot) -> Vec<Row> {
        let view = self.view();
        if cols.len() == self.schema.len() && cols.iter().enumerate().all(|(i, &c)| i == c) {
            return view.visible(snap).cloned().collect();
        }
        view.visible(snap)
            .map(|r| cols.iter().map(|&i| r[i].clone()).collect())
            .collect()
    }

    /// Clone every row visible to `snap` — the whole-table snapshot a
    /// self-referencing `INSERT … SELECT` materializes.
    pub(crate) fn snapshot_rows(&self, snap: Snapshot) -> Vec<Row> {
        self.view().visible(snap).cloned().collect()
    }

    // ---- secondary indexes -------------------------------------------------

    /// The table's secondary-index descriptors.
    pub(crate) fn indexes(&self) -> &[IndexMeta] {
        &self.index_meta
    }

    /// Look up an index by (lower-cased) name: its ordinal (the position
    /// of its slice in every arena) and descriptor.
    pub(crate) fn find_index(&self, name: &str) -> Option<(usize, &IndexMeta)> {
        self.index_meta
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
    }

    /// The version-payload churn counter (statistics staleness input).
    pub(crate) fn mod_count(&self) -> u64 {
        self.mod_count.load(Ordering::Relaxed)
    }

    /// True when any unique index exists — DML paths only build check
    /// rows when this holds.
    pub(crate) fn has_unique_index(&self) -> bool {
        self.index_meta.iter().any(|m| m.unique)
    }

    /// Error-before-mutation unique check for a statement's batch of new
    /// rows: rejects a duplicate non-NULL key within the batch or against
    /// any still-conflicting indexed version in any shard. `superseded`
    /// lists the ascending rids the statement will end (its own updates
    /// never conflict with the versions they replace); `txid` is the
    /// owning transaction (0 in auto-commit).
    pub(crate) fn check_unique(
        &mut self,
        new_rows: &[Row],
        superseded: &[Rid],
        txid: u64,
    ) -> Result<()> {
        let uniques: Vec<(usize, usize)> = self
            .index_meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.unique)
            .map(|(o, m)| (o, m.column))
            .collect();
        for (ord, col) in uniques {
            let mut batch = BTreeSet::new();
            for r in new_rows {
                let Some(k) = key_of(&r[col]) else {
                    continue; // NULLs never collide
                };
                if !batch.insert(k.clone()) {
                    return Err(unique_violation(&self.index_meta[ord].name));
                }
                for s in 0..self.shards.len() {
                    let arena = self.shards[s].arena.get_mut();
                    for &p in arena.indexes[ord].positions_of(&k) {
                        if superseded.binary_search(&make_rid(s, p)).is_err()
                            && conflict_live(&arena.versions[p], txid)
                        {
                            return Err(unique_violation(&self.index_meta[ord].name));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Create a secondary index over `column`, building each shard's
    /// slice from that shard's version heap. A unique index validates
    /// existing data first — across *all* shards, since duplicates may
    /// straddle a shard boundary — and leaves the table untouched on
    /// violation.
    pub(crate) fn create_index(&mut self, name: &str, column: &str, unique: bool) -> Result<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| SqlError::UnknownColumn(column.to_string()))?;
        crate::index::check_indexable(self.schema.columns[col].dtype, column)?;
        let mut built = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            let arena = self.shards[s].arena.get_mut();
            let mut ix = SecondaryIndex::new(col);
            ix.rebuild(arena.versions.iter().map(|v| v.data.as_slice()));
            built.push(ix);
        }
        if unique {
            let mut seen = BTreeSet::new();
            for s in 0..self.shards.len() {
                for v in &self.shards[s].arena.get_mut().versions {
                    if conflict_live(v, 0) {
                        if let Some(k) = key_of(&v.data[col]) {
                            if !seen.insert(k) {
                                return Err(unique_violation(name));
                            }
                        }
                    }
                }
            }
        }
        for (s, ix) in built.into_iter().enumerate() {
            self.shards[s].arena.get_mut().indexes.push(ix);
        }
        self.index_meta.push(IndexMeta {
            name: name.to_string(),
            column: col,
            unique,
        });
        Ok(())
    }

    /// Drop an index by name, removing its slice from every arena and
    /// returning its descriptor (the undo log keeps its shape so
    /// ROLLBACK can rebuild it).
    pub(crate) fn drop_index(&mut self, name: &str) -> Option<IndexMeta> {
        let i = self.index_meta.iter().position(|m| m.name == name)?;
        for s in 0..self.shards.len() {
            self.shards[s].arena.get_mut().indexes.remove(i);
        }
        Some(self.index_meta.remove(i))
    }

    /// Clone the current committed rows — a convenience for tests and
    /// direct (non-SQL) inspection.
    #[cfg(test)]
    pub(crate) fn latest_rows(&self) -> Vec<Row> {
        self.snapshot_rows(Snapshot::latest())
    }
}

/// A consistent read window over every shard of one table: all shard
/// read guards, held in ascending shard order. Created under the outer
/// table guard (read or write); while it lives, no commit stamping,
/// concurrent append or compaction can touch the table.
pub(crate) struct TableView<'t> {
    arenas: Vec<RwLockReadGuard<'t, Arena>>,
}

impl TableView<'_> {
    /// Iterate the rows visible to `snap`, in ascending rid order.
    pub(crate) fn visible(&self, snap: Snapshot) -> impl Iterator<Item = &Row> {
        self.arenas.iter().flat_map(move |a| {
            let all = a.all_visible(snap);
            a.versions
                .iter()
                .filter(move |v| all || v.visible(snap))
                .map(|v| &v.data)
        })
    }

    /// Iterate `(rid, version)` pairs visible to `snap` — the read-guard
    /// analogue of [`Table::visible_versions`].
    pub(crate) fn visible_versions(
        &self,
        snap: Snapshot,
    ) -> impl Iterator<Item = (Rid, &VersionedRow)> {
        self.arenas.iter().enumerate().flat_map(move |(s, a)| {
            let all = a.all_visible(snap);
            a.versions
                .iter()
                .enumerate()
                .filter(move |(_, v)| all || v.visible(snap))
                .map(move |(p, v)| (make_rid(s, p), v))
        })
    }

    /// Iterate the rows at the given ascending rids that are visible to
    /// `snap` — the index-scan analogue of [`TableView::visible`]:
    /// candidates come from an index probe, the snapshot check makes
    /// them exact.
    pub(crate) fn visible_at<'a>(
        &'a self,
        rids: &'a [Rid],
        snap: Snapshot,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        rids.iter().filter_map(move |&r| {
            let a = self.arenas.get(rid_shard(r))?;
            let v = a.versions.get(rid_pos(r))?;
            (a.all_visible(snap) || v.visible(snap)).then_some(&v.data)
        })
    }

    /// The version at `rid`, if it exists.
    #[cfg(test)]
    pub(crate) fn version(&self, rid: Rid) -> Option<&VersionedRow> {
        self.arenas.get(rid_shard(rid))?.versions.get(rid_pos(rid))
    }

    /// Candidate rids for a point/range probe of index `ordinal`,
    /// ascending (per-shard results are ascending and shards concatenate
    /// in rid order). `None` when any shard's probe cannot narrow — the
    /// caller falls back to a sequential scan.
    pub(crate) fn probe(
        &self,
        ordinal: usize,
        space: KeySpace,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<Rid>> {
        let mut out = Vec::new();
        for (s, a) in self.arenas.iter().enumerate() {
            let local = a.indexes[ordinal].probe(space, lo, hi)?;
            out.extend(local.into_iter().map(|p| make_rid(s, p)));
        }
        Some(out)
    }
}

/// A read view over one shard — what a streaming cursor holds while it
/// drains that shard's batch.
pub(crate) struct ShardView<'t> {
    arena: RwLockReadGuard<'t, Arena>,
}

impl ShardView<'_> {
    /// The shard's versions (local positions).
    pub(crate) fn versions(&self) -> &[VersionedRow] {
        &self.arena.versions
    }

    /// Every version in this shard is visible to `snap`.
    pub(crate) fn all_visible(&self, snap: Snapshot) -> bool {
        self.arena.all_visible(snap)
    }
}

/// An in-progress concurrent append: the writer's home-shard write
/// guard. Writers with different home shards append in parallel; the
/// table's outer guard is only held in read mode.
pub(crate) struct ShardAppend<'t> {
    mod_count: &'t AtomicU64,
    shard: usize,
    arena: RwLockWriteGuard<'t, Arena>,
    waited: bool,
}

impl ShardAppend<'_> {
    /// True when the home-shard lock was contended and the writer had to
    /// block for it.
    pub(crate) fn waited(&self) -> bool {
        self.waited
    }

    /// Append a version (already coerced) and return its rid.
    pub(crate) fn push(&mut self, begin: u64, data: Row) -> Rid {
        let pos = self.arena.push(begin, data);
        self.mod_count.fetch_add(1, Ordering::Relaxed);
        make_rid(self.shard, pos)
    }
}

/// Exclusive locks over a commit's touched shards, used by the
/// group-commit leader to stamp pending versions.
pub(crate) struct ShardLocks<'t> {
    guards: Vec<(usize, RwLockWriteGuard<'t, Arena>)>,
}

impl ShardLocks<'_> {
    fn arena(&mut self, shard: usize) -> &mut Arena {
        let i = self
            .guards
            .binary_search_by_key(&shard, |g| g.0)
            .expect("commit touched an unlocked shard");
        &mut self.guards[i].1
    }

    /// Commit a pending insert: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_begin(&mut self, rid: Rid, txid: u64, cts: u64) {
        self.arena(rid_shard(rid))
            .commit_begin(rid_pos(rid), txid, cts);
    }

    /// Commit a pending delete: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_end(&mut self, rid: Rid, txid: u64, cts: u64) {
        self.arena(rid_shard(rid))
            .commit_end(rid_pos(rid), txid, cts);
    }
}

/// A materialized query result: schema-lite (names only matter for lookup)
/// plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower)
    }

    /// Extract one column as `f64` (ints/floats/bools), erroring on NULLs.
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows.iter().map(|r| r[idx].as_f64()).collect()
    }

    /// Extract one column of timestamps as epoch seconds.
    pub fn column_timestamps(&self, name: &str) -> Result<Vec<i64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows
            .iter()
            .map(|r| match &r[idx] {
                Value::Timestamp(t) => Ok(*t),
                Value::Text(s) => crate::value::parse_timestamp(s),
                other => Err(SqlError::Type(format!(
                    "column \"{name}\": {other} is not a timestamp"
                ))),
            })
            .collect()
    }

    /// Iterate rows as by-name-addressable views (see
    /// [`crate::decode::NamedRow`]).
    pub fn named_rows(&self) -> impl Iterator<Item = crate::decode::NamedRow<'_>> {
        self.rows
            .iter()
            .map(|r| crate::decode::NamedRow::new(&self.columns, r))
    }

    /// First value of the first row — convenient for scalar queries like
    /// `SELECT fmu_create(…)`.
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| SqlError::Execution("query returned no rows".into()))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table (for examples and the repro binary).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}{}",
                c,
                if i + 1 < self.columns.len() {
                    " | "
                } else {
                    "\n"
                },
                w = widths[i]
            ));
        }
        for (i, w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(*w));
            out.push_str(if i + 1 < widths.len() { "-+-" } else { "\n" });
        }
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:<w$}{}",
                    cell,
                    if i + 1 < row.len() { " | " } else { "\n" },
                    w = widths[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("x", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Int),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn insert_coerces_and_checks_arity() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(t.latest_rows()[0][1], Value::Float(2.0));
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Float(0.0)])
            .is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn project_rows_prunes_columns() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(2.5)]).unwrap();
        let snap = Snapshot::latest();
        // Subset, preserving row order.
        assert_eq!(
            t.project_rows(&[1], snap),
            vec![vec![Value::Float(1.5)], vec![Value::Float(2.5)]]
        );
        // Identity selection is the whole-row clone fast path.
        assert_eq!(t.project_rows(&[0, 1], snap), t.latest_rows());
        // No used columns: row count preserved, rows empty.
        assert_eq!(t.project_rows(&[], snap), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn rids_encode_shard_and_position() {
        assert_eq!(make_rid(0, 7), 7, "one shard: rid is the position");
        let r = make_rid(3, 41);
        assert_eq!(rid_shard(r), 3);
        assert_eq!(rid_pos(r), 41);
        // Shard-major ascending: every rid of shard 2 sorts below every
        // rid of shard 3.
        assert!(make_rid(2, usize::from(u16::MAX)) < make_rid(3, 0));
    }

    #[test]
    fn visibility_follows_begin_end_stamps() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        // Committed at ts 5, still live.
        let i = t.push_version(5, vec![Value::Int(2), Value::Float(2.0)]);
        // Pending insert by txn 9.
        let j = t.push_version(UNCOMMITTED | 9, vec![Value::Int(3), Value::Float(3.0)]);
        let old = Snapshot { ts: 4, txid: 0 };
        let new = Snapshot { ts: 5, txid: 0 };
        let own = Snapshot { ts: 4, txid: 9 };
        assert_eq!(t.view().visible(old).count(), 1);
        assert_eq!(t.view().visible(new).count(), 2);
        assert_eq!(
            t.view().visible(own).count(),
            2,
            "own pending insert is visible"
        );
        // Delete version i at ts 7: snapshots at or after 7 lose it.
        t.end_version(i, 7);
        assert_eq!(t.view().visible(Snapshot { ts: 6, txid: 0 }).count(), 2);
        assert_eq!(t.view().visible(Snapshot { ts: 7, txid: 0 }).count(), 1);
        // Own pending delete hides the row from its owner only.
        t.commit_begin(j, 9, 8);
        t.end_version(j, UNCOMMITTED | 11);
        assert_eq!(t.view().visible(Snapshot { ts: 8, txid: 11 }).count(), 1);
        assert_eq!(t.view().visible(Snapshot { ts: 8, txid: 0 }).count(), 2);
    }

    #[test]
    fn compaction_respects_watermark_and_pins() {
        let mut t = Table::new(schema());
        for k in 0..4 {
            t.insert(vec![Value::Int(k), Value::Float(0.0)]).unwrap();
        }
        t.end_version(0, 5);
        t.end_version(1, 9);
        t.revert_insert(2, 0); // not a pending insert of txn 0: no-op
        assert_eq!(t.len(), 2);
        // A pin blocks compaction entirely.
        t.pin();
        assert_eq!(t.compact(10), 0);
        t.unpin();
        // Watermark 5 reclaims only the version that died at ts <= 5.
        assert_eq!(t.compact(5), 1);
        assert_eq!(t.compact(9), 1);
        assert_eq!(t.compact(9), 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sharded_appends_keep_rids_stable_and_rows_complete() {
        let mut t = Table::new(schema());
        t.set_shard_count(4);
        assert_eq!(t.shard_count(), 4);
        let mut rids = Vec::new();
        for s in 0..4 {
            for k in 0..3 {
                rids.push(t.push_to_shard(
                    s,
                    1,
                    vec![Value::Int((s * 3 + k) as i64), Value::Float(0.0)],
                ));
            }
        }
        // Rids address their versions regardless of other shards' growth.
        let view = t.view();
        for (n, &r) in rids.iter().enumerate() {
            assert_eq!(view.version(r).unwrap().data[0], Value::Int(n as i64));
        }
        // Full-table iteration sees every row once, in rid order.
        let snap = Snapshot { ts: 1, txid: 0 };
        let ids: Vec<i64> = view
            .visible(snap)
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        drop(view);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn concurrent_appends_from_threads_preserve_the_multiset() {
        let mut t = Table::new(schema());
        t.set_shard_count(4);
        let t = &t;
        std::thread::scope(|scope| {
            for w in 0..4i64 {
                scope.spawn(move || {
                    for k in 0..50 {
                        let mut ap = t.begin_append();
                        ap.push(1, vec![Value::Int(w * 100 + k), Value::Float(0.0)]);
                    }
                });
            }
        });
        let view = t.view();
        let mut ids: Vec<i64> = view
            .visible(Snapshot { ts: 1, txid: 0 })
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        ids.sort_unstable();
        let want: Vec<i64> = (0..4i64)
            .flat_map(|w| (0..50).map(move |k| w * 100 + k))
            .collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn unique_checks_see_across_shards() {
        let mut t = Table::new(schema());
        t.set_shard_count(2);
        t.push_to_shard(0, 1, vec![Value::Int(7), Value::Float(0.0)]);
        t.push_to_shard(1, 1, vec![Value::Int(7), Value::Float(1.0)]);
        // Build-time validation catches the cross-shard duplicate…
        assert!(t.create_index("u_id", "id", true).is_err());
        assert!(!t.has_unique_index(), "failed build leaves no index");
        // …and after deduplication, probes and conflict checks span shards.
        t.end_version(make_rid(1, 0), 2);
        t.create_index("u_id", "id", true).unwrap();
        let err = t.check_unique(&[vec![Value::Int(7), Value::Float(9.0)]], &[], 0);
        assert!(err.is_err(), "conflict with the shard-0 live row");
        t.check_unique(&[vec![Value::Int(8), Value::Float(9.0)]], &[], 0)
            .unwrap();
    }

    #[test]
    fn per_shard_compaction_skips_only_pinned_shards() {
        let mut t = Table::new(schema());
        t.set_shard_count(2);
        let a = t.push_to_shard(0, 1, vec![Value::Int(0), Value::Float(0.0)]);
        let b = t.push_to_shard(1, 1, vec![Value::Int(1), Value::Float(0.0)]);
        t.end_version(a, 3);
        t.end_version(b, 3);
        t.pin();
        t.unpin_shard(0); // cursor drained shard 0, still parked on shard 1
        assert_eq!(t.compact(5), 1, "only the unpinned shard compacts");
        assert_eq!(t.compact_shards(5), 0, "shard 1 still pinned");
        t.unpin_shard(1);
        assert_eq!(t.compact_shards(5), 1);
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("X"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn query_result_column_extraction() {
        let mut q = QueryResult::new(vec!["t".into(), "v".into()]);
        q.rows.push(vec![Value::Timestamp(3600), Value::Float(1.5)]);
        q.rows.push(vec![Value::Timestamp(7200), Value::Int(2)]);
        assert_eq!(q.column_f64("v").unwrap(), vec![1.5, 2.0]);
        assert_eq!(q.column_timestamps("t").unwrap(), vec![3600, 7200]);
        assert!(q.column_f64("missing").is_err());
    }

    #[test]
    fn scalar_of_empty_result_errors() {
        let q = QueryResult::new(vec!["v".into()]);
        assert!(q.scalar().is_err());
    }

    #[test]
    fn ascii_rendering_aligns() {
        let mut q = QueryResult::new(vec!["name".into(), "v".into()]);
        q.rows
            .push(vec![Value::Text("alpha".into()), Value::Int(1)]);
        q.rows.push(vec![Value::Text("b".into()), Value::Int(22)]);
        let s = q.to_ascii();
        assert!(s.contains("name  | v"));
        assert!(s.contains("alpha | 1"));
    }
}
