//! Schemas, rows and in-memory tables.

use crate::error::{Result, SqlError};
use crate::value::{DataType, Value};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (stored lower-case; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Create a column (name is normalized to lower case).
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Self {
        Column {
            name: name.as_ref().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns, rejecting duplicates.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(SqlError::Constraint(format!(
                    "duplicate column name \"{}\"",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// An in-memory heap table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    /// Row storage.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Insert a row, coercing each value to its column type.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Constraint(format!(
                "INSERT has {} values but table has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        let coerced: Result<Row> = row
            .iter()
            .zip(&self.schema.columns)
            .map(|(v, c)| {
                v.coerce_to(c.dtype)
                    .map_err(|e| SqlError::Type(format!("column \"{}\": {e}", c.name)))
            })
            .collect();
        self.rows.push(coerced?);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Clone the row storage keeping only the given columns, in `cols`
    /// order — the column-pruned snapshot the executor takes when a scan
    /// cannot run zero-copy. Cloning whole rows is the fast path when
    /// every column is read.
    pub fn project_rows(&self, cols: &[usize]) -> Vec<Row> {
        if cols.len() == self.schema.len() && cols.iter().enumerate().all(|(i, &c)| i == c) {
            return self.rows.clone();
        }
        self.rows
            .iter()
            .map(|r| cols.iter().map(|&i| r[i].clone()).collect())
            .collect()
    }
}

/// A materialized query result: schema-lite (names only matter for lookup)
/// plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower)
    }

    /// Extract one column as `f64` (ints/floats/bools), erroring on NULLs.
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows.iter().map(|r| r[idx].as_f64()).collect()
    }

    /// Extract one column of timestamps as epoch seconds.
    pub fn column_timestamps(&self, name: &str) -> Result<Vec<i64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows
            .iter()
            .map(|r| match &r[idx] {
                Value::Timestamp(t) => Ok(*t),
                Value::Text(s) => crate::value::parse_timestamp(s),
                other => Err(SqlError::Type(format!(
                    "column \"{name}\": {other} is not a timestamp"
                ))),
            })
            .collect()
    }

    /// Iterate rows as by-name-addressable views (see
    /// [`crate::decode::NamedRow`]).
    pub fn named_rows(&self) -> impl Iterator<Item = crate::decode::NamedRow<'_>> {
        self.rows
            .iter()
            .map(|r| crate::decode::NamedRow::new(&self.columns, r))
    }

    /// First value of the first row — convenient for scalar queries like
    /// `SELECT fmu_create(…)`.
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| SqlError::Execution("query returned no rows".into()))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table (for examples and the repro binary).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}{}",
                c,
                if i + 1 < self.columns.len() {
                    " | "
                } else {
                    "\n"
                },
                w = widths[i]
            ));
        }
        for (i, w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(*w));
            out.push_str(if i + 1 < widths.len() { "-+-" } else { "\n" });
        }
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:<w$}{}",
                    cell,
                    if i + 1 < row.len() { " | " } else { "\n" },
                    w = widths[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("x", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Int),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn insert_coerces_and_checks_arity() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(t.rows[0][1], Value::Float(2.0));
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Float(0.0)])
            .is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn project_rows_prunes_columns() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(2.5)]).unwrap();
        // Subset, preserving row order.
        assert_eq!(
            t.project_rows(&[1]),
            vec![vec![Value::Float(1.5)], vec![Value::Float(2.5)]]
        );
        // Identity selection is the whole-row clone fast path.
        assert_eq!(t.project_rows(&[0, 1]), t.rows);
        // No used columns: row count preserved, rows empty.
        assert_eq!(t.project_rows(&[]), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("X"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn query_result_column_extraction() {
        let mut q = QueryResult::new(vec!["t".into(), "v".into()]);
        q.rows.push(vec![Value::Timestamp(3600), Value::Float(1.5)]);
        q.rows.push(vec![Value::Timestamp(7200), Value::Int(2)]);
        assert_eq!(q.column_f64("v").unwrap(), vec![1.5, 2.0]);
        assert_eq!(q.column_timestamps("t").unwrap(), vec![3600, 7200]);
        assert!(q.column_f64("missing").is_err());
    }

    #[test]
    fn scalar_of_empty_result_errors() {
        let q = QueryResult::new(vec!["v".into()]);
        assert!(q.scalar().is_err());
    }

    #[test]
    fn ascii_rendering_aligns() {
        let mut q = QueryResult::new(vec!["name".into(), "v".into()]);
        q.rows
            .push(vec![Value::Text("alpha".into()), Value::Int(1)]);
        q.rows.push(vec![Value::Text("b".into()), Value::Int(22)]);
        let s = q.to_ascii();
        assert!(s.contains("name  | v"));
        assert!(s.contains("alpha | 1"));
    }
}
