//! Schemas, rows and in-memory tables.

use crate::error::{Result, SqlError};
use crate::index::{key_of, unique_violation, SecondaryIndex};
use crate::value::{DataType, Value};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (stored lower-case; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Create a column (name is normalized to lower case).
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Self {
        Column {
            name: name.as_ref().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns, rejecting duplicates.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(SqlError::Constraint(format!(
                    "duplicate column name \"{}\"",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// `end` stamp of a version that has not been deleted or superseded.
///
/// Note that `LIVE` has the [`UNCOMMITTED`] bit set, so visibility checks
/// must test for `LIVE` before interpreting the uncommitted bit.
pub(crate) const LIVE: u64 = u64::MAX;

/// High bit of a begin/end stamp: the stamp is a transaction id, not a
/// commit timestamp. `UNCOMMITTED | txid` marks a pending write that only
/// the owning transaction can see (begin) or still sees (end).
pub(crate) const UNCOMMITTED: u64 = 1 << 63;

/// `begin` stamp of a version that no snapshot can ever see again (a
/// rolled-back insert). Transaction ids start at 1, so `UNCOMMITTED | 0`
/// never collides with a real pending write.
pub(crate) const TOMBSTONE: u64 = UNCOMMITTED;

/// The read position of one statement or cursor: every version committed
/// at or before `ts` is visible, plus this transaction's own pending
/// writes when `txid != 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Snapshot {
    /// Commit-clock value pinned when the snapshot was taken.
    pub ts: u64,
    /// Owning transaction id, or 0 outside an explicit transaction.
    pub txid: u64,
}

impl Snapshot {
    /// A snapshot that sees every committed version and no pending ones —
    /// the view a brand-new statement would get "now".
    #[cfg(test)]
    pub(crate) fn latest() -> Self {
        Snapshot {
            ts: UNCOMMITTED - 1,
            txid: 0,
        }
    }
}

/// One version of one row: the payload plus the half-open commit-time
/// interval `[begin, end)` during which it is the current version.
#[derive(Debug, Clone)]
pub(crate) struct VersionedRow {
    /// Commit timestamp of the writer that created this version, or
    /// `UNCOMMITTED | txid` while that writer is still in flight.
    pub begin: u64,
    /// Commit timestamp of the writer that deleted/superseded it,
    /// [`LIVE`] while current, or `UNCOMMITTED | txid` for a pending
    /// delete.
    pub end: u64,
    /// The row payload.
    pub data: Row,
}

impl VersionedRow {
    /// The MVCC visibility rule: created by us or committed at-or-before
    /// our snapshot, and not yet deleted as far as our snapshot can tell.
    pub(crate) fn visible(&self, snap: Snapshot) -> bool {
        let begin_ok = if self.begin & UNCOMMITTED != 0 {
            snap.txid != 0 && self.begin == UNCOMMITTED | snap.txid
        } else {
            self.begin <= snap.ts
        };
        if !begin_ok {
            return false;
        }
        if self.end == LIVE {
            return true;
        }
        if self.end & UNCOMMITTED != 0 {
            // Another transaction's pending delete does not hide the row;
            // our own does.
            !(snap.txid != 0 && self.end == UNCOMMITTED | snap.txid)
        } else {
            self.end > snap.ts
        }
    }

    /// True when no current or future snapshot can see this version:
    /// a rolled-back insert, or a deletion committed at or before the
    /// oldest snapshot still alive.
    fn reclaimable(&self, watermark: u64) -> bool {
        self.begin == TOMBSTONE
            || (self.end != LIVE && self.end & UNCOMMITTED == 0 && self.end <= watermark)
    }

    /// Dead for accounting purposes: it can eventually be reclaimed once
    /// the watermark passes it.
    fn dead(&self) -> bool {
        self.begin == TOMBSTONE || (self.end != LIVE && self.end & UNCOMMITTED == 0)
    }
}

/// Compaction trigger: at least this many dead versions, and at least
/// half the heap dead.
const GC_MIN_DEAD: usize = 64;

/// An in-memory heap table: a schema plus an append-only heap of row
/// versions. Visibility of a version to a given `Snapshot` is decided
/// per read; dead versions linger until compaction reclaims them.
#[derive(Debug, Default)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    /// Version storage. Append-only except for [`Table::compact`], so
    /// version indices stay valid while `pins > 0`.
    versions: Vec<VersionedRow>,
    /// Count of versions whose data can eventually be reclaimed.
    dead: usize,
    /// Count of versions carrying an in-flight transaction's stamp — an
    /// uncommitted begin or a pending delete. Tombstones are excluded
    /// (they are counted in `dead`).
    pending: usize,
    /// Highest committed begin stamp ever appended (monotone; may
    /// overstate after removals, which only makes the quiescence check
    /// conservative).
    max_begin: u64,
    /// Holders of version indices that outlive a single guard (streaming
    /// cursors, open transactions, snapshot DML). Compaction is skipped
    /// while any pin is held, because it renumbers versions.
    pins: std::sync::atomic::AtomicUsize,
    /// Secondary indexes over single columns, maintained by every
    /// operation that appends, rewrites, moves or truncates version
    /// payloads (stamp-only changes never touch them — probes re-check
    /// visibility).
    indexes: Vec<SecondaryIndex>,
    /// Monotone count of version-payload modifications — the statistics
    /// layer's staleness signal (see `crate::stats`).
    mod_count: u64,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            versions: self.versions.clone(),
            dead: self.dead,
            pending: self.pending,
            max_begin: self.max_begin,
            pins: std::sync::atomic::AtomicUsize::new(0),
            indexes: self.indexes.clone(),
            mod_count: self.mod_count,
        }
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            versions: Vec::new(),
            dead: 0,
            pending: 0,
            max_begin: 0,
            pins: std::sync::atomic::AtomicUsize::new(0),
            indexes: Vec::new(),
            mod_count: 0,
        }
    }

    /// Validate arity and coerce each value to its column type, without
    /// storing anything — the error-before-mutation half of every insert.
    pub(crate) fn coerce_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Constraint(format!(
                "INSERT has {} values but table has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        row.iter()
            .zip(&self.schema.columns)
            .map(|(v, c)| {
                v.coerce_to(c.dtype)
                    .map_err(|e| SqlError::Type(format!("column \"{}\": {e}", c.name)))
            })
            .collect()
    }

    /// Insert a row, coercing each value to its column type. The version
    /// is created visible to every snapshot (begin 0) — the direct table
    /// building path used before a table is registered.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        let coerced = self.coerce_row(row)?;
        self.push_version(0, coerced);
        Ok(())
    }

    /// Roll back versions appended past `len` by the current statement —
    /// the error path of a batch insert. Safe under the exclusive guard
    /// the statement holds: the truncated tail was never visible to any
    /// other snapshot, and pinned cursors only hold indices below it.
    pub(crate) fn truncate_versions(&mut self, len: usize) {
        // The tail was appended by the failing statement: under a
        // transaction those versions carry uncommitted begin stamps.
        for v in &self.versions[len..] {
            if v.begin & UNCOMMITTED != 0 && v.begin != TOMBSTONE {
                self.pending -= 1;
            }
        }
        self.mod_count += (self.versions.len() - len) as u64;
        self.versions.truncate(len);
        for ix in &mut self.indexes {
            ix.truncate(len);
        }
    }

    /// Append a version (already coerced) and return its index.
    pub(crate) fn push_version(&mut self, begin: u64, data: Row) -> usize {
        if begin & UNCOMMITTED != 0 {
            self.pending += 1;
        } else if begin > self.max_begin {
            self.max_begin = begin;
        }
        self.versions.push(VersionedRow {
            begin,
            end: LIVE,
            data,
        });
        self.mod_count += 1;
        let pos = self.versions.len() - 1;
        let data = &self.versions[pos].data;
        for ix in &mut self.indexes {
            ix.insert(pos, &data[ix.column]);
        }
        pos
    }

    /// All versions, for conflict checks by index.
    pub(crate) fn versions(&self) -> &[VersionedRow] {
        &self.versions
    }

    /// Stamp a version's end (delete/supersede it as of `stamp`). The
    /// index entry stays — probes re-check visibility — but the churn
    /// counts toward statistics staleness.
    pub(crate) fn end_version(&mut self, i: usize, stamp: u64) {
        self.versions[i].end = stamp;
        self.mod_count += 1;
        if stamp & UNCOMMITTED == 0 {
            self.dead += 1;
        } else {
            self.pending += 1;
        }
    }

    /// Commit a pending insert: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_begin(&mut self, i: usize, txid: u64, cts: u64) {
        if self.versions[i].begin == UNCOMMITTED | txid {
            self.versions[i].begin = cts;
            self.pending -= 1;
            if cts > self.max_begin {
                self.max_begin = cts;
            }
        }
    }

    /// Commit a pending delete: `UNCOMMITTED | txid` → `cts`.
    pub(crate) fn commit_end(&mut self, i: usize, txid: u64, cts: u64) {
        if self.versions[i].end == UNCOMMITTED | txid {
            self.versions[i].end = cts;
            self.pending -= 1;
            self.dead += 1;
        }
    }

    /// Undo a pending delete: the version is current again.
    pub(crate) fn revert_end(&mut self, i: usize, txid: u64) {
        if self.versions[i].end == UNCOMMITTED | txid {
            self.versions[i].end = LIVE;
            self.pending -= 1;
        }
    }

    /// Undo a pending insert: tombstone the version.
    pub(crate) fn revert_insert(&mut self, i: usize, txid: u64) {
        if self.versions[i].begin == UNCOMMITTED | txid {
            self.versions[i].begin = TOMBSTONE;
            self.pending -= 1;
            self.dead += 1;
        }
    }

    /// Block compaction while version indices are held across guard
    /// releases. Paired with [`Table::unpin`].
    pub(crate) fn pin(&self) {
        self.pins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// Release a [`Table::pin`].
    pub(crate) fn unpin(&self) {
        self.pins.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// True when compaction may renumber versions.
    pub(crate) fn pinned(&self) -> bool {
        self.pins.load(std::sync::atomic::Ordering::SeqCst) > 0
    }

    /// Overwrite the payload of a version in place — the single-version
    /// fast path of an auto-commit UPDATE, which creates no garbage. The
    /// caller must have proven that no snapshot below its commit
    /// timestamp is live and no cursor pins this table (see
    /// `Database::overwrite_safe`). `cols`/`vals` are the SET columns;
    /// any secondary index on a rewritten column moves the version's
    /// entry to its new key.
    pub(crate) fn overwrite_version(&mut self, i: usize, cols: &[usize], vals: Vec<Value>) {
        self.mod_count += 1;
        for (v, &c) in vals.into_iter().zip(cols) {
            let old = std::mem::replace(&mut self.versions[i].data[c], v);
            let new = &self.versions[i].data[c];
            for ix in &mut self.indexes {
                if ix.column == c {
                    ix.reindex(i, &old, new);
                }
            }
        }
    }

    /// Physically remove versions by ascending index — the single-version
    /// fast path of an auto-commit DELETE. Renumbers the heap (and every
    /// index entry above a removed position), so it demands the same
    /// proof as [`Table::overwrite_version`].
    pub(crate) fn remove_versions(&mut self, sorted: &[usize]) {
        let mut doomed = sorted.iter().copied().peekable();
        let mut i = 0usize;
        self.versions.retain(|_| {
            let hit = doomed.peek() == Some(&i);
            if hit {
                doomed.next();
            }
            i += 1;
            !hit
        });
        self.mod_count += sorted.len() as u64;
        for ix in &mut self.indexes {
            ix.remove_renumber(sorted);
        }
    }

    /// True when enough garbage has accumulated to be worth a compaction
    /// pass (the caller still checks pins via [`Table::compact`]).
    pub(crate) fn needs_gc(&self) -> bool {
        self.dead >= GC_MIN_DEAD && self.dead * 2 >= self.versions.len()
    }

    /// Drop every version no snapshot at or after `watermark` can see.
    /// Returns the number reclaimed; a no-op while the table is pinned
    /// (compaction renumbers the surviving versions).
    pub(crate) fn compact(&mut self, watermark: u64) -> usize {
        if self.pinned() {
            return 0;
        }
        let removed: Vec<usize> = self
            .versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.reclaimable(watermark))
            .map(|(i, _)| i)
            .collect();
        if removed.is_empty() {
            return 0;
        }
        self.versions.retain(|v| !v.reclaimable(watermark));
        for ix in &mut self.indexes {
            ix.remove_renumber(&removed);
        }
        self.dead = self.versions.iter().filter(|v| v.dead()).count();
        removed.len()
    }

    /// Every version in the heap is visible to `snap`: nothing dead,
    /// nothing pending, and nothing committed after the snapshot. Scans
    /// use this to skip the per-version visibility check on quiescent
    /// tables — the overwhelmingly common serial case.
    pub(crate) fn all_visible(&self, snap: Snapshot) -> bool {
        self.dead == 0 && self.pending == 0 && self.max_begin <= snap.ts
    }

    /// Number of current committed rows (pending writes count as still
    /// current to everyone but their owner).
    pub fn len(&self) -> usize {
        if self.dead == 0 && self.pending == 0 {
            return self.versions.len();
        }
        self.versions
            .iter()
            .filter(|v| v.begin & UNCOMMITTED == 0 && (v.end == LIVE || v.end & UNCOMMITTED != 0))
            .count()
    }

    /// True when the table holds no current committed rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the rows visible to `snap`, in version order.
    pub(crate) fn visible(&self, snap: Snapshot) -> impl Iterator<Item = &Row> {
        let all = self.all_visible(snap);
        self.versions
            .iter()
            .filter(move |v| all || v.visible(snap))
            .map(|v| &v.data)
    }

    /// Iterate `(version index, version)` pairs visible to `snap` — for
    /// DML, which needs the index to stamp the version it supersedes.
    pub(crate) fn visible_versions(
        &self,
        snap: Snapshot,
    ) -> impl Iterator<Item = (usize, &VersionedRow)> {
        let all = self.all_visible(snap);
        self.versions
            .iter()
            .enumerate()
            .filter(move |(_, v)| all || v.visible(snap))
    }

    /// Clone the rows visible to `snap` keeping only the given columns,
    /// in `cols` order — the column-pruned snapshot the executor takes
    /// when a scan cannot run zero-copy. Cloning whole rows is the fast
    /// path when every column is read.
    pub(crate) fn project_rows(&self, cols: &[usize], snap: Snapshot) -> Vec<Row> {
        if cols.len() == self.schema.len() && cols.iter().enumerate().all(|(i, &c)| i == c) {
            return self.visible(snap).cloned().collect();
        }
        self.visible(snap)
            .map(|r| cols.iter().map(|&i| r[i].clone()).collect())
            .collect()
    }

    /// Iterate the rows at the given ascending version positions that
    /// are visible to `snap` — the index-scan analogue of
    /// [`Table::visible`]: candidates come from an index probe, the
    /// snapshot check makes them exact.
    pub(crate) fn visible_at<'a>(
        &'a self,
        positions: &'a [usize],
        snap: Snapshot,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        let all = self.all_visible(snap);
        positions.iter().filter_map(move |&p| {
            let v = self.versions.get(p)?;
            (all || v.visible(snap)).then_some(&v.data)
        })
    }

    // ---- secondary indexes -------------------------------------------------

    /// The table's secondary indexes.
    pub(crate) fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Look up an index by (lower-cased) name.
    pub(crate) fn find_index(&self, name: &str) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|ix| ix.name == name)
    }

    /// The version-payload churn counter (statistics staleness input).
    pub(crate) fn mod_count(&self) -> u64 {
        self.mod_count
    }

    /// True when any unique index exists — DML paths only build check
    /// rows when this holds.
    pub(crate) fn has_unique_index(&self) -> bool {
        self.indexes.iter().any(|ix| ix.unique)
    }

    /// Could this version still be (or become) current? Committed-dead
    /// versions and tombstones cannot conflict; live versions always do;
    /// a pending delete by *another* transaction may roll back, so the
    /// version still conflicts — only our own pending delete clears it.
    fn conflict_live(v: &VersionedRow, txid: u64) -> bool {
        if v.begin == TOMBSTONE {
            return false;
        }
        if v.end == LIVE {
            return true;
        }
        v.end & UNCOMMITTED != 0 && (txid == 0 || v.end != UNCOMMITTED | txid)
    }

    /// Error-before-mutation unique check for a statement's batch of new
    /// rows: rejects a duplicate non-NULL key within the batch or against
    /// any still-conflicting indexed version. `superseded` lists the
    /// ascending version positions the statement will end (its own
    /// updates never conflict with the versions they replace); `txid` is
    /// the owning transaction (0 in auto-commit).
    pub(crate) fn check_unique(
        &self,
        new_rows: &[Row],
        superseded: &[usize],
        txid: u64,
    ) -> Result<()> {
        for ix in &self.indexes {
            if !ix.unique {
                continue;
            }
            let mut batch = std::collections::BTreeSet::new();
            for r in new_rows {
                let Some(k) = key_of(&r[ix.column]) else {
                    continue; // NULLs never collide
                };
                if !batch.insert(k.clone()) {
                    return Err(unique_violation(&ix.name));
                }
                for &p in ix.positions_of(&k) {
                    if superseded.binary_search(&p).is_err()
                        && Self::conflict_live(&self.versions[p], txid)
                    {
                        return Err(unique_violation(&ix.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Create a secondary index over `column`, building it from the
    /// whole version heap. A unique index validates existing data first
    /// and leaves the table untouched on violation.
    pub(crate) fn create_index(&mut self, name: &str, column: &str, unique: bool) -> Result<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| SqlError::UnknownColumn(column.to_string()))?;
        crate::index::check_indexable(self.schema.columns[col].dtype, column)?;
        let mut ix = SecondaryIndex::new(name.to_string(), col, unique);
        ix.rebuild(self.versions.iter().map(|v| v.data.as_slice()));
        if unique && ix.find_duplicate(|p| Self::conflict_live(&self.versions[p], 0)) {
            return Err(unique_violation(name));
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop an index by name, returning it (the undo log keeps its shape
    /// so ROLLBACK can rebuild it).
    pub(crate) fn drop_index(&mut self, name: &str) -> Option<SecondaryIndex> {
        let i = self.indexes.iter().position(|ix| ix.name == name)?;
        Some(self.indexes.remove(i))
    }

    /// Clone the current committed rows — a convenience for tests and
    /// direct (non-SQL) inspection.
    #[cfg(test)]
    pub(crate) fn latest_rows(&self) -> Vec<Row> {
        self.visible(Snapshot::latest()).cloned().collect()
    }
}

/// A materialized query result: schema-lite (names only matter for lookup)
/// plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower)
    }

    /// Extract one column as `f64` (ints/floats/bools), erroring on NULLs.
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows.iter().map(|r| r[idx].as_f64()).collect()
    }

    /// Extract one column of timestamps as epoch seconds.
    pub fn column_timestamps(&self, name: &str) -> Result<Vec<i64>> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
        self.rows
            .iter()
            .map(|r| match &r[idx] {
                Value::Timestamp(t) => Ok(*t),
                Value::Text(s) => crate::value::parse_timestamp(s),
                other => Err(SqlError::Type(format!(
                    "column \"{name}\": {other} is not a timestamp"
                ))),
            })
            .collect()
    }

    /// Iterate rows as by-name-addressable views (see
    /// [`crate::decode::NamedRow`]).
    pub fn named_rows(&self) -> impl Iterator<Item = crate::decode::NamedRow<'_>> {
        self.rows
            .iter()
            .map(|r| crate::decode::NamedRow::new(&self.columns, r))
    }

    /// First value of the first row — convenient for scalar queries like
    /// `SELECT fmu_create(…)`.
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| SqlError::Execution("query returned no rows".into()))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table (for examples and the repro binary).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}{}",
                c,
                if i + 1 < self.columns.len() {
                    " | "
                } else {
                    "\n"
                },
                w = widths[i]
            ));
        }
        for (i, w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(*w));
            out.push_str(if i + 1 < widths.len() { "-+-" } else { "\n" });
        }
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:<w$}{}",
                    cell,
                    if i + 1 < row.len() { " | " } else { "\n" },
                    w = widths[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("x", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Int),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn insert_coerces_and_checks_arity() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(t.latest_rows()[0][1], Value::Float(2.0));
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Float(0.0)])
            .is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn project_rows_prunes_columns() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(2.5)]).unwrap();
        let snap = Snapshot::latest();
        // Subset, preserving row order.
        assert_eq!(
            t.project_rows(&[1], snap),
            vec![vec![Value::Float(1.5)], vec![Value::Float(2.5)]]
        );
        // Identity selection is the whole-row clone fast path.
        assert_eq!(t.project_rows(&[0, 1], snap), t.latest_rows());
        // No used columns: row count preserved, rows empty.
        assert_eq!(t.project_rows(&[], snap), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn visibility_follows_begin_end_stamps() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        // Committed at ts 5, still live.
        let i = t.push_version(5, vec![Value::Int(2), Value::Float(2.0)]);
        // Pending insert by txn 9.
        let j = t.push_version(UNCOMMITTED | 9, vec![Value::Int(3), Value::Float(3.0)]);
        let old = Snapshot { ts: 4, txid: 0 };
        let new = Snapshot { ts: 5, txid: 0 };
        let own = Snapshot { ts: 4, txid: 9 };
        assert_eq!(t.visible(old).count(), 1);
        assert_eq!(t.visible(new).count(), 2);
        assert_eq!(t.visible(own).count(), 2, "own pending insert is visible");
        // Delete version i at ts 7: snapshots at or after 7 lose it.
        t.end_version(i, 7);
        assert_eq!(t.visible(Snapshot { ts: 6, txid: 0 }).count(), 2);
        assert_eq!(t.visible(Snapshot { ts: 7, txid: 0 }).count(), 1);
        // Own pending delete hides the row from its owner only.
        t.commit_begin(j, 9, 8);
        t.end_version(j, UNCOMMITTED | 11);
        assert_eq!(t.visible(Snapshot { ts: 8, txid: 11 }).count(), 1);
        assert_eq!(t.visible(Snapshot { ts: 8, txid: 0 }).count(), 2);
    }

    #[test]
    fn compaction_respects_watermark_and_pins() {
        let mut t = Table::new(schema());
        for k in 0..4 {
            t.insert(vec![Value::Int(k), Value::Float(0.0)]).unwrap();
        }
        t.end_version(0, 5);
        t.end_version(1, 9);
        t.revert_insert(2, 0); // not a pending insert of txn 0: no-op
        assert_eq!(t.len(), 2);
        // A pin blocks compaction entirely.
        t.pin();
        assert_eq!(t.compact(10), 0);
        t.unpin();
        // Watermark 5 reclaims only the version that died at ts <= 5.
        assert_eq!(t.compact(5), 1);
        assert_eq!(t.compact(9), 1);
        assert_eq!(t.compact(9), 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("X"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn query_result_column_extraction() {
        let mut q = QueryResult::new(vec!["t".into(), "v".into()]);
        q.rows.push(vec![Value::Timestamp(3600), Value::Float(1.5)]);
        q.rows.push(vec![Value::Timestamp(7200), Value::Int(2)]);
        assert_eq!(q.column_f64("v").unwrap(), vec![1.5, 2.0]);
        assert_eq!(q.column_timestamps("t").unwrap(), vec![3600, 7200]);
        assert!(q.column_f64("missing").is_err());
    }

    #[test]
    fn scalar_of_empty_result_errors() {
        let q = QueryResult::new(vec!["v".into()]);
        assert!(q.scalar().is_err());
    }

    #[test]
    fn ascii_rendering_aligns() {
        let mut q = QueryResult::new(vec!["name".into(), "v".into()]);
        q.rows
            .push(vec![Value::Text("alpha".into()), Value::Int(1)]);
        q.rows.push(vec![Value::Text("b".into()), Value::Int(22)]);
        let s = q.to_ascii();
        assert!(s.contains("name  | v"));
        assert!(s.contains("alpha | 1"));
    }
}
