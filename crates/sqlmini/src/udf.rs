//! Typed UDF registration: declared argument signatures with central
//! coercion, arity checking and PostgreSQL-style error messages.
//!
//! [`Database::udf`] starts a [`UdfBuilder`]; the builder declares the
//! argument list (required, optional, variadic tail) and registers the
//! function body with [`UdfBuilder::scalar`] or [`UdfBuilder::table`]. By
//! the time the body runs, every argument has been arity-checked and
//! coerced to its declared kind, so the body reads arguments through the
//! infallible [`Args`] accessors instead of hand-rolled per-UDF parsing:
//!
//! ```
//! use pgfmu_sqlmini::{ArgKind, Database, Value};
//!
//! let db = Database::new();
//! db.udf("scale")
//!     .arg("x", ArgKind::Float)
//!     .opt_arg("factor", ArgKind::Float)
//!     .scalar(|_db, args| Ok(Value::Float(args.f64(0) * args.opt_f64(1).unwrap_or(2.0))));
//! assert_eq!(
//!     db.execute("SELECT scale(21)").unwrap().rows[0][0],
//!     Value::Float(42.0)
//! );
//! // Wrong arity and wrong types are rejected centrally:
//! assert!(db.execute("SELECT scale()").is_err());
//! assert!(db.execute("SELECT scale('a')").is_err());
//! ```
//!
//! Every function registered through the builder also maintains a call
//! counter, surfaced through the `pgfmu_stats()` set-returning function.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::table::QueryResult;
use crate::value::{DataType, Value};

/// Declared kind of a UDF argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// Text; no implicit conversions.
    Text,
    /// Double precision; integers widen implicitly.
    Float,
    /// 64-bit integer; integral floats narrow implicitly.
    Int,
    /// Boolean; accepts `0`/`1` and PostgreSQL boolean spellings.
    Bool,
    /// Timestamp; text literals parse implicitly.
    Timestamp,
    /// Any value, passed through untouched (the `variant` of signatures).
    Any,
}

impl ArgKind {
    /// SQL spelling used in signatures and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ArgKind::Text => "text",
            ArgKind::Float => "double precision",
            ArgKind::Int => "integer",
            ArgKind::Bool => "boolean",
            ArgKind::Timestamp => "timestamp",
            ArgKind::Any => "any",
        }
    }

    /// Coerce a non-NULL value to this kind; `None` on a type mismatch.
    fn coerce(self, v: &Value) -> Option<Value> {
        match (self, v) {
            (ArgKind::Any, v) => Some(v.clone()),
            (ArgKind::Text, Value::Text(_)) => Some(v.clone()),
            (ArgKind::Float, Value::Float(_)) => Some(v.clone()),
            (ArgKind::Float, Value::Int(i)) => Some(Value::Float(*i as f64)),
            (ArgKind::Int, Value::Int(_)) => Some(v.clone()),
            (ArgKind::Int, Value::Float(f)) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (ArgKind::Bool, _) => v.cast_to(DataType::Bool).ok(),
            (ArgKind::Timestamp, Value::Timestamp(_)) => Some(v.clone()),
            (ArgKind::Timestamp, Value::Text(s)) => {
                crate::value::parse_timestamp(s).ok().map(Value::Timestamp)
            }
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct ArgSpec {
    name: &'static str,
    kind: ArgKind,
    required: bool,
}

/// The declared signature of a typed UDF.
#[derive(Debug, Clone)]
struct UdfDef {
    name: String,
    args: Vec<ArgSpec>,
    variadic: Option<ArgKind>,
}

impl UdfDef {
    /// Human-readable signature for error messages, e.g.
    /// `fmu_create(modelref text [, instanceid text])`.
    fn signature(&self) -> String {
        let mut out = format!("{}(", self.name);
        let mut first = true;
        for a in &self.args {
            let piece = format!("{} {}", a.name, a.kind.name());
            if a.required {
                if !first {
                    out.push_str(", ");
                }
                out.push_str(&piece);
            } else {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("[, {piece}]"));
            }
            first = false;
        }
        if let Some(kind) = self.variadic {
            out.push_str(&format!(
                "{}{} variadic…",
                if first { "" } else { ", " },
                kind.name()
            ));
        }
        out.push(')');
        out
    }

    fn arity_error(&self, raw: &[Value]) -> SqlError {
        let given: Vec<&str> = raw.iter().map(|v| v.data_type().name()).collect();
        SqlError::Type(format!(
            "function {}({}) does not exist; expected {}",
            self.name,
            given.join(", "),
            self.signature()
        ))
    }

    /// Arity check alone (used on the STRICT fast path, where a NULL
    /// argument short-circuits before coercion).
    fn check_arity(&self, raw: &[Value]) -> std::result::Result<(), SqlError> {
        let required = self.args.iter().filter(|a| a.required).count();
        let too_many = self.variadic.is_none() && raw.len() > self.args.len();
        if raw.len() < required || too_many {
            return Err(self.arity_error(raw));
        }
        Ok(())
    }

    /// Arity-check and coerce a raw argument slice into [`Args`].
    fn check(&self, raw: &[Value]) -> std::result::Result<Args, SqlError> {
        self.check_arity(raw)?;
        let mut values = Vec::with_capacity(self.args.len().max(raw.len()));
        for (i, v) in raw.iter().enumerate() {
            let (kind, arg_name, required) = match self.args.get(i) {
                Some(spec) => (spec.kind, spec.name, spec.required),
                None => (
                    self.variadic.expect("arity checked above"),
                    "variadic",
                    false,
                ),
            };
            if v.is_null() {
                if required && kind != ArgKind::Any {
                    return Err(SqlError::Type(format!(
                        "{}: argument {} ({arg_name}) must not be null; expected {}",
                        self.name,
                        i + 1,
                        self.signature()
                    )));
                }
                values.push(Value::Null);
                continue;
            }
            match kind.coerce(v) {
                Some(coerced) => values.push(coerced),
                None => {
                    return Err(SqlError::Type(format!(
                        "{}: argument {} ({arg_name}) must be {}, not {}; expected {}",
                        self.name,
                        i + 1,
                        kind.name(),
                        v.data_type().name(),
                        self.signature()
                    )))
                }
            }
        }
        let given = raw.len();
        // Pad missing optional arguments with NULL so bodies index freely.
        while values.len() < self.args.len() {
            values.push(Value::Null);
        }
        Ok(Args { values, given })
    }
}

/// Validated, coerced UDF arguments. Missing optional arguments are padded
/// with NULL, so accessors can index the full declared signature. The
/// typed accessors panic only on misuse against the declared signature
/// (reading a `Float` argument as text, say) — a bug in the UDF body, not
/// reachable from SQL.
pub struct Args {
    values: Vec<Value>,
    given: usize,
}

impl Args {
    /// Number of arguments the caller actually supplied.
    pub fn given(&self) -> usize {
        self.given
    }

    /// Was argument `i` supplied (even if as an explicit NULL)?
    pub fn has(&self, i: usize) -> bool {
        i < self.given
    }

    /// All (coerced, padded) argument values.
    pub fn raw(&self) -> &[Value] {
        &self.values
    }

    /// The variadic tail starting at declared position `from`.
    pub fn rest(&self, from: usize) -> &[Value] {
        &self.values[from.min(self.values.len())..]
    }

    /// Argument `i` as a raw value.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Required text argument `i`.
    pub fn text(&self, i: usize) -> &str {
        match &self.values[i] {
            Value::Text(s) => s,
            other => panic!("argument {i} declared text, found {other:?}"),
        }
    }

    /// Optional text argument `i` (`None` when omitted or NULL).
    pub fn opt_text(&self, i: usize) -> Option<&str> {
        match &self.values[i] {
            Value::Null => None,
            Value::Text(s) => Some(s),
            other => panic!("argument {i} declared text, found {other:?}"),
        }
    }

    /// Required float argument `i`.
    pub fn f64(&self, i: usize) -> f64 {
        self.values[i]
            .as_f64()
            .unwrap_or_else(|_| panic!("argument {i} declared numeric"))
    }

    /// Optional float argument `i`.
    pub fn opt_f64(&self, i: usize) -> Option<f64> {
        match &self.values[i] {
            Value::Null => None,
            v => Some(
                v.as_f64()
                    .unwrap_or_else(|_| panic!("argument {i} declared numeric")),
            ),
        }
    }

    /// Required integer argument `i`.
    pub fn i64(&self, i: usize) -> i64 {
        self.values[i]
            .as_i64()
            .unwrap_or_else(|_| panic!("argument {i} declared integer"))
    }

    /// Optional integer argument `i`.
    pub fn opt_i64(&self, i: usize) -> Option<i64> {
        match &self.values[i] {
            Value::Null => None,
            v => Some(
                v.as_i64()
                    .unwrap_or_else(|_| panic!("argument {i} declared integer")),
            ),
        }
    }

    /// Required boolean argument `i`.
    pub fn boolean(&self, i: usize) -> bool {
        self.values[i]
            .as_bool()
            .unwrap_or_else(|_| panic!("argument {i} declared boolean"))
    }
}

/// Builder for a typed UDF — see the [module docs](self).
pub struct UdfBuilder<'db> {
    db: &'db Database,
    def: UdfDef,
    strict: bool,
}

impl<'db> UdfBuilder<'db> {
    pub(crate) fn new(db: &'db Database, name: &str) -> Self {
        UdfBuilder {
            db,
            def: UdfDef {
                name: name.to_ascii_lowercase(),
                args: Vec::new(),
                variadic: None,
            },
            strict: false,
        }
    }

    /// Declare a required argument. Required arguments must precede
    /// optional ones.
    pub fn arg(mut self, name: &'static str, kind: ArgKind) -> Self {
        assert!(
            self.def.args.iter().all(|a| a.required),
            "required arguments must precede optional ones"
        );
        self.def.args.push(ArgSpec {
            name,
            kind,
            required: true,
        });
        self
    }

    /// Declare an optional argument (padded with NULL when omitted).
    pub fn opt_arg(mut self, name: &'static str, kind: ArgKind) -> Self {
        self.def.args.push(ArgSpec {
            name,
            kind,
            required: false,
        });
        self
    }

    /// Accept any number of trailing arguments of the given kind.
    pub fn variadic(mut self, kind: ArgKind) -> Self {
        self.def.variadic = Some(kind);
        self
    }

    /// PostgreSQL `STRICT` semantics: when any supplied argument is NULL
    /// the function returns NULL without running the body.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Register the function as a scalar UDF.
    pub fn scalar<F>(self, f: F)
    where
        F: Fn(&Database, &Args) -> Result<Value> + Send + Sync + 'static,
    {
        let def = Arc::new(self.def);
        let name = def.name.clone();
        let strict = self.strict;
        let counter = self.db.udf_counter(&name);
        self.db.register_scalar(&name, move |db, raw| {
            counter.fetch_add(1, Ordering::Relaxed);
            if strict && raw.iter().any(Value::is_null) {
                def.check_arity(raw)?; // arity errors still surface
                return Ok(Value::Null);
            }
            let args = def.check(raw)?;
            f(db, &args)
        });
    }

    /// Register the function as a set-returning UDF. With
    /// [`UdfBuilder::strict`], a NULL argument yields an empty result
    /// (PostgreSQL STRICT semantics for SRFs: zero rows) without running
    /// the body.
    pub fn table<F>(self, f: F)
    where
        F: Fn(&Database, &Args) -> Result<QueryResult> + Send + Sync + 'static,
    {
        let def = Arc::new(self.def);
        let name = def.name.clone();
        let strict = self.strict;
        let counter = self.db.udf_counter(&name);
        self.db.register_table_fn(&name, move |db, raw| {
            counter.fetch_add(1, Ordering::Relaxed);
            if strict && raw.iter().any(Value::is_null) {
                def.check_arity(raw)?; // arity errors still surface
                return Ok(QueryResult::new(Vec::new()));
            }
            let args = def.check(raw)?;
            f(db, &args)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new()
    }

    #[test]
    fn arity_errors_are_postgres_flavoured() {
        let d = db();
        d.udf("three")
            .arg("a", ArgKind::Text)
            .arg("b", ArgKind::Float)
            .opt_arg("c", ArgKind::Float)
            .scalar(|_db, args| Ok(Value::Float(args.f64(1))));
        let err = d.execute("SELECT three('x')").unwrap_err().to_string();
        assert!(err.contains("three(text) does not exist"), "{err}");
        assert!(
            err.contains("three(a text, b double precision [, c double precision])"),
            "{err}"
        );
        let err = d
            .execute("SELECT three('x', 1, 2, 3)")
            .unwrap_err()
            .to_string();
        assert!(err.contains("does not exist"), "{err}");
        assert_eq!(
            d.execute("SELECT three('x', 1)").unwrap().rows[0][0],
            Value::Float(1.0)
        );
    }

    #[test]
    fn type_mismatches_name_the_argument() {
        let d = db();
        d.udf("typed")
            .arg("id", ArgKind::Text)
            .arg("v", ArgKind::Float)
            .scalar(|_db, args| Ok(Value::Float(args.f64(1))));
        let err = d.execute("SELECT typed(1, 2)").unwrap_err().to_string();
        assert!(err.contains("argument 1 (id) must be text"), "{err}");
        let err = d.execute("SELECT typed('a', 'b')").unwrap_err().to_string();
        assert!(
            err.contains("argument 2 (v) must be double precision"),
            "{err}"
        );
        // Ints widen to float centrally.
        assert_eq!(
            d.execute("SELECT typed('a', 3)").unwrap().rows[0][0],
            Value::Float(3.0)
        );
    }

    #[test]
    fn null_required_arguments_are_rejected_unless_strict() {
        let d = db();
        d.udf("needs")
            .arg("x", ArgKind::Float)
            .scalar(|_db, args| Ok(Value::Float(args.f64(0) + 1.0)));
        let err = d.execute("SELECT needs(NULL)").unwrap_err().to_string();
        assert!(err.contains("must not be null"), "{err}");
        d.udf("lax")
            .arg("x", ArgKind::Float)
            .strict()
            .scalar(|_db, args| Ok(Value::Float(args.f64(0) + 1.0)));
        assert_eq!(
            d.execute("SELECT lax(NULL)").unwrap().rows[0][0],
            Value::Null
        );
        // Strict still reports arity errors.
        assert!(d.execute("SELECT lax(NULL, NULL)").is_err());
    }

    #[test]
    fn strict_table_functions_return_zero_rows_on_null() {
        let d = db();
        d.udf("expand")
            .arg("n", ArgKind::Int)
            .strict()
            .table(|_db, args| {
                let mut q = QueryResult::new(vec!["i".into()]);
                for i in 0..args.i64(0) {
                    q.rows.push(vec![Value::Int(i)]);
                }
                Ok(q)
            });
        assert_eq!(d.execute("SELECT * FROM expand(3)").unwrap().len(), 3);
        assert_eq!(d.execute("SELECT * FROM expand(NULL)").unwrap().len(), 0);
        // Arity errors still beat the NULL short-circuit.
        assert!(d.execute("SELECT * FROM expand(NULL, 1)").is_err());
        // In a lateral join, NULL-argument rows contribute zero rows while
        // non-NULL rows still expand (PostgreSQL STRICT SRF semantics).
        d.execute("CREATE TABLE t (x int)").unwrap();
        d.execute("INSERT INTO t VALUES (2), (NULL), (1)").unwrap();
        let q = d
            .execute("SELECT i FROM t, LATERAL expand(t.x) AS i ORDER BY i")
            .unwrap();
        assert_eq!(q.len(), 3); // 2 rows from x=2, 0 from NULL, 1 from x=1
        assert_eq!(q.rows[0][0], Value::Int(0));
        assert_eq!(q.rows[2][0], Value::Int(1));
    }

    #[test]
    fn variadic_tail_is_coerced() {
        let d = db();
        d.udf("summed")
            .arg("label", ArgKind::Text)
            .variadic(ArgKind::Float)
            .scalar(|_db, args| {
                let s: f64 = args.rest(1).iter().map(|v| v.as_f64().unwrap()).sum();
                Ok(Value::Float(s))
            });
        assert_eq!(
            d.execute("SELECT summed('x', 1, 2.5, 3)").unwrap().rows[0][0],
            Value::Float(6.5)
        );
        assert!(d.execute("SELECT summed('x', 'y')").is_err());
    }

    #[test]
    fn optional_args_pad_with_null_and_report_given() {
        let d = db();
        d.udf("opt")
            .arg("a", ArgKind::Text)
            .opt_arg("b", ArgKind::Text)
            .scalar(|_db, args| {
                assert!(args.has(0));
                Ok(Value::Text(format!(
                    "{}:{}:{}",
                    args.text(0),
                    args.opt_text(1).unwrap_or("-"),
                    args.given()
                )))
            });
        assert_eq!(
            d.execute("SELECT opt('x')").unwrap().rows[0][0],
            Value::Text("x:-:1".into())
        );
        assert_eq!(
            d.execute("SELECT opt('x', 'y')").unwrap().rows[0][0],
            Value::Text("x:y:2".into())
        );
    }

    #[test]
    fn builder_functions_count_calls() {
        let d = db();
        d.udf("counted")
            .arg("x", ArgKind::Float)
            .scalar(|_db, args| Ok(Value::Float(args.f64(0))));
        d.execute("SELECT counted(1)").unwrap();
        d.execute("SELECT counted(2)").unwrap();
        let counts = d.udf_call_counts();
        let c = counts.iter().find(|(n, _)| n == "counted").unwrap();
        assert_eq!(c.1, 2);
    }

    #[test]
    fn timestamp_arguments_parse_text() {
        let d = db();
        d.udf("at")
            .arg("when", ArgKind::Timestamp)
            .scalar(|_db, args| Ok(args.value(0).clone()));
        let q = d.execute("SELECT at('2015-02-01 00:00')").unwrap();
        assert_eq!(
            q.rows[0][0],
            Value::Timestamp(crate::value::parse_timestamp("2015-02-01 00:00").unwrap())
        );
        assert!(d.execute("SELECT at('not a date')").is_err());
    }
}
