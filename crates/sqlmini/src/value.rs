//! SQL values, data types and the `variant` type.
//!
//! The pgFMU model catalogue stores variable values in columns of the
//! PostgreSQL `variant` extension type — "a specialized data type that
//! allows storing any data type in a column, while keeping track of the
//! original data type" (paper §5). Here [`DataType::Variant`] columns accept
//! any [`Value`]; since `Value` is a tagged union the original type always
//! travels with the value.
//!
//! Timestamps are minute-precision civil timestamps stored as seconds since
//! the Unix epoch, with conversion helpers implementing the standard
//! days-from-civil algorithm. Intervals are second counts.

use std::fmt;

use crate::error::{Result, SqlError};

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float (`double precision`).
    Float,
    /// UTF-8 text.
    Text,
    /// Civil timestamp (seconds since Unix epoch).
    Timestamp,
    /// Time interval (seconds).
    Interval,
    /// Any value; the stored value keeps its original type (pgxn `variant`).
    Variant,
}

impl DataType {
    /// Parse a SQL type name (PostgreSQL spellings accepted).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Ok(DataType::Bool),
            "int" | "integer" | "bigint" | "int4" | "int8" | "smallint" => Ok(DataType::Int),
            "float" | "float8" | "float4" | "real" | "double" | "numeric" | "decimal" => {
                Ok(DataType::Float)
            }
            "text" | "varchar" | "char" | "string" => Ok(DataType::Text),
            "timestamp" | "timestamptz" | "datetime" => Ok(DataType::Timestamp),
            "interval" => Ok(DataType::Interval),
            "variant" => Ok(DataType::Variant),
            other => Err(SqlError::Type(format!("unknown type name '{other}'"))),
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "boolean",
            DataType::Int => "integer",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Timestamp => "timestamp",
            DataType::Interval => "interval",
            DataType::Variant => "variant",
        }
    }
}

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Text.
    Text(String),
    /// Timestamp: seconds since the Unix epoch.
    Timestamp(i64),
    /// Interval: seconds.
    Interval(i64),
}

impl Value {
    /// The value's runtime type (NULL has no type; returns `Variant`).
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Variant,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Interval(_) => DataType::Interval,
        }
    }

    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints and floats; booleans as 0/1). Timestamps are
    /// *not* numeric — use explicit casts.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(f64::from(*b)),
            other => Err(SqlError::Type(format!("value {other} is not numeric"))),
        }
    }

    /// Integer view (floats must be integral).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(SqlError::Type(format!("value {other} is not an integer"))),
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(SqlError::Type(format!("value {other} is not text"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SqlError::Type(format!("value {other} is not boolean"))),
        }
    }

    /// Coerce to a declared column type (implicit conversion on INSERT).
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        match (ty, self) {
            (DataType::Variant, v) => Ok(v.clone()),
            (t, v) if v.data_type() == t => Ok(v.clone()),
            (DataType::Float, Value::Int(i)) => Ok(Value::Float(*i as f64)),
            (DataType::Int, Value::Float(f)) if f.fract() == 0.0 => Ok(Value::Int(*f as i64)),
            (DataType::Bool, Value::Int(i)) if *i == 0 || *i == 1 => Ok(Value::Bool(*i == 1)),
            (DataType::Timestamp, Value::Text(s)) => Ok(Value::Timestamp(parse_timestamp(s)?)),
            (DataType::Interval, Value::Text(s)) => Ok(Value::Interval(parse_interval(s)?)),
            (DataType::Text, v) => Ok(Value::Text(v.to_string())),
            (t, v) => Err(SqlError::Type(format!(
                "cannot coerce {} to {}",
                v.data_type().name(),
                t.name()
            ))),
        }
    }

    /// Explicit `::type` cast — a superset of implicit coercion.
    pub fn cast_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        match (ty, self) {
            (DataType::Int, Value::Float(f)) => Ok(Value::Int(f.round() as i64)),
            (DataType::Int, Value::Text(s)) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| SqlError::Type(format!("cannot cast '{s}' to integer"))),
            (DataType::Float, Value::Text(s)) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| SqlError::Type(format!("cannot cast '{s}' to float"))),
            (DataType::Bool, Value::Text(s)) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "yes" | "on" | "1" => Ok(Value::Bool(true)),
                "f" | "false" | "no" | "off" | "0" => Ok(Value::Bool(false)),
                _ => Err(SqlError::Type(format!("cannot cast '{s}' to boolean"))),
            },
            _ => self.coerce_to(ty),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

/// `None` becomes SQL NULL — the natural encoding for optional binds.
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "t" } else { "f" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Timestamp(secs) => write!(f, "{}", format_timestamp(*secs)),
            Value::Interval(secs) => write!(f, "{secs} seconds"),
        }
    }
}

// ---------------------------------------------------------------------------
// Civil timestamp conversion (Howard Hinnant's days-from-civil algorithm)
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Build an epoch-seconds timestamp from civil components.
pub fn timestamp_from_parts(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> i64 {
    days_from_civil(y, mo, d) * 86_400 + (h as i64) * 3600 + (mi as i64) * 60 + s as i64
}

/// Parse `'YYYY-MM-DD[ HH:MM[:SS]]'` (also accepting `/` as date separator,
/// as in the paper's Table 6).
pub fn parse_timestamp(s: &str) -> Result<i64> {
    let s = s.trim();
    let bad = || SqlError::Type(format!("invalid timestamp literal '{s}'"));
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let sep = if date_part.contains('/') { '/' } else { '-' };
    let mut dp = date_part.split(sep);
    let y: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let mo: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    let (mut h, mut mi, mut sec) = (0u32, 0u32, 0u32);
    if let Some(t) = time_part {
        let mut tp = t.split(':');
        h = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        mi = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if let Some(sv) = tp.next() {
            sec = sv
                .split('.')
                .next()
                .unwrap_or("0")
                .parse()
                .map_err(|_| bad())?;
        }
        if tp.next().is_some() || h > 23 || mi > 59 || sec > 59 {
            return Err(bad());
        }
    }
    Ok(timestamp_from_parts(y, mo, d, h, mi, sec))
}

/// Format an epoch-seconds timestamp as `YYYY-MM-DD HH:MM:SS`.
pub fn format_timestamp(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let (h, mi, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
}

/// Parse an interval literal: `'N hour[s]' | 'N minute[s]' | 'N second[s]'
/// | 'N day[s]'` or combinations like `'1 day 2 hours'`.
pub fn parse_interval(s: &str) -> Result<i64> {
    let bad = || SqlError::Type(format!("invalid interval literal '{s}'"));
    let mut total = 0i64;
    let mut parts = s.split_whitespace().peekable();
    let mut any = false;
    while let Some(num) = parts.next() {
        let n: i64 = num.parse().map_err(|_| bad())?;
        let unit = parts.next().ok_or_else(bad)?;
        let mult = match unit.trim_end_matches('s') {
            "second" | "sec" => 1,
            "minute" | "min" => 60,
            "hour" => 3600,
            "day" => 86_400,
            "week" => 7 * 86_400,
            _ => return Err(bad()),
        };
        total += n * mult;
        any = true;
    }
    if !any {
        return Err(bad());
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_parsing() {
        assert_eq!(DataType::parse("INTEGER").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("double").unwrap(), DataType::Float);
        assert_eq!(DataType::parse("TIMESTAMP").unwrap(), DataType::Timestamp);
        assert_eq!(DataType::parse("variant").unwrap(), DataType::Variant);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn civil_date_round_trip() {
        // Spot checks.
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2015, 2, 1), 16467);
        for z in [-1000, 0, 1, 16467, 20000, 30000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn timestamp_parse_and_format() {
        let t = parse_timestamp("2015-02-01 00:00").unwrap();
        assert_eq!(format_timestamp(t), "2015-02-01 00:00:00");
        // Paper Table 6 uses slashes.
        let t2 = parse_timestamp("2015/02/01 01:00").unwrap();
        assert_eq!(t2 - t, 3600);
        let t3 = parse_timestamp("2018/04/04 08:30").unwrap();
        assert_eq!(format_timestamp(t3), "2018-04-04 08:30:00");
        // Date-only form.
        assert_eq!(
            format_timestamp(parse_timestamp("2015-01-02").unwrap()),
            "2015-01-02 00:00:00"
        );
        assert!(parse_timestamp("not a date").is_err());
        assert!(parse_timestamp("2015-13-01").is_err());
        assert!(parse_timestamp("2015-02-01 25:00").is_err());
    }

    #[test]
    fn interval_parsing() {
        assert_eq!(parse_interval("1 hour").unwrap(), 3600);
        assert_eq!(parse_interval("30 minutes").unwrap(), 1800);
        assert_eq!(parse_interval("2 days").unwrap(), 172_800);
        assert_eq!(parse_interval("1 day 2 hours").unwrap(), 93_600);
        assert!(parse_interval("banana").is_err());
        assert!(parse_interval("5").is_err());
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(4.0).coerce_to(DataType::Int).unwrap(),
            Value::Int(4)
        );
        assert!(Value::Float(4.5).coerce_to(DataType::Int).is_err());
        assert_eq!(
            Value::Text("2015-02-01 00:00".into())
                .coerce_to(DataType::Timestamp)
                .unwrap(),
            Value::Timestamp(parse_timestamp("2015-02-01 00:00").unwrap())
        );
        // Variant accepts anything and keeps the original type.
        let v = Value::Bool(true).coerce_to(DataType::Variant).unwrap();
        assert_eq!(v.data_type(), DataType::Bool);
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Float(4.6).cast_to(DataType::Int).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Value::Text("42".into()).cast_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Text("2.5".into()).cast_to(DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::Int(7).cast_to(DataType::Text).unwrap(),
            Value::Text("7".into())
        );
        assert_eq!(
            Value::Text("true".into()).cast_to(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::Text("maybe".into()).cast_to(DataType::Bool).is_err());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(2).as_f64().unwrap(), 2.0);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::Text("x".into()).as_f64().is_err());
        assert_eq!(Value::Float(5.0).as_i64().unwrap(), 5);
        assert!(Value::Float(5.5).as_i64().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "t");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(
            Value::Timestamp(parse_timestamp("2015-02-28 08:00").unwrap()).to_string(),
            "2015-02-28 08:00:00"
        );
    }
}
