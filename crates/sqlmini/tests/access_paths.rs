//! Tier-2 tests for the access-path subsystem: secondary indexes and
//! their transactional maintenance, ANALYZE-driven planner statistics,
//! the cost model's scan and join choices, `EXPLAIN` output, hash
//! equi-joins, `count(DISTINCT …)` and unique-constraint enforcement.

use pgfmu_sqlmini::{Database, Value};

/// Render `EXPLAIN <sql>` as one newline-joined string.
fn plan_of(db: &Database, sql: &str) -> String {
    let q = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    assert_eq!(q.columns, vec!["query plan"]);
    q.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.as_str(),
            other => panic!("non-text plan row {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A table big enough that the cost model prefers a point probe, with
/// an index on `k` and fresh statistics.
fn indexed_db(rows: i64) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int, v text)").unwrap();
    let insert = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
    for i in 0..rows {
        insert
            .query(&[Value::Int(i), Value::Text(format!("r{i}"))])
            .unwrap();
    }
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    db.execute("ANALYZE t").unwrap();
    db
}

// --- scan choice and EXPLAIN -----------------------------------------------

#[test]
fn point_lookup_takes_the_index_and_matches_seq_scan() {
    let db = indexed_db(2000);
    let plan = plan_of(&db, "SELECT v FROM t WHERE k = 1234");
    assert!(plan.contains("IndexScan using t_k on t"), "{plan}");
    assert!(plan.contains("Index Cond: (k = 1234)"), "{plan}");

    let (ix_before, _, _, _) = db.access_stats();
    let via_index: Vec<String> = db.query_as("SELECT v FROM t WHERE k = 1234", &[]).unwrap();
    let (ix_after, _, _, _) = db.access_stats();
    assert_eq!(
        ix_after,
        ix_before + 1,
        "the probe must take the index path"
    );

    db.set_index_access_enabled(false);
    assert!(
        plan_of(&db, "SELECT v FROM t WHERE k = 1234").contains("SeqScan on t"),
        "disabled index access must fall back to a sequential scan"
    );
    let (_, seq_before, _, _) = db.access_stats();
    let via_seq: Vec<String> = db.query_as("SELECT v FROM t WHERE k = 1234", &[]).unwrap();
    let (_, seq_after, _, _) = db.access_stats();
    assert_eq!(seq_after, seq_before + 1);
    assert_eq!(via_index, via_seq);
    assert_eq!(via_index, vec!["r1234".to_string()]);
}

#[test]
fn range_scan_takes_the_index_and_matches_seq_scan() {
    let db = indexed_db(2000);
    let sql = "SELECT k FROM t WHERE k > 100 AND k <= 110 ORDER BY k";
    let plan = plan_of(&db, sql);
    assert!(plan.contains("IndexScan using t_k on t"), "{plan}");
    assert!(
        plan.contains("Index Cond: (k > 100) AND (k <= 110)"),
        "{plan}"
    );
    let with_index: Vec<i64> = db.query_as(sql, &[]).unwrap();
    db.set_index_access_enabled(false);
    let seq: Vec<i64> = db.query_as(sql, &[]).unwrap();
    assert_eq!(with_index, seq);
    assert_eq!(with_index, (101..=110).collect::<Vec<_>>());
}

#[test]
fn unselective_or_unindexed_predicates_stay_sequential() {
    let db = indexed_db(100);
    // Covers most of the table: cheaper to scan.
    assert!(plan_of(&db, "SELECT k FROM t WHERE k >= 0").contains("SeqScan on t"));
    // Not sargable: arithmetic on the column.
    assert!(plan_of(&db, "SELECT k FROM t WHERE k + 1 = 5").contains("SeqScan on t"));
    // No predicate at all.
    assert!(plan_of(&db, "SELECT k FROM t").contains("SeqScan on t"));
}

#[test]
fn explain_covers_every_statement_kind() {
    let db = indexed_db(10);
    assert!(plan_of(&db, "INSERT INTO t VALUES (99, 'x')").starts_with("Insert on t"));
    assert!(plan_of(&db, "UPDATE t SET v = 'y' WHERE k = 1").starts_with("Update on t"));
    assert!(plan_of(&db, "DELETE FROM t WHERE k = 1").starts_with("Delete on t"));
    // EXPLAIN itself must not execute the statement.
    let n: Vec<i64> = db.query_as("SELECT count(*) FROM t", &[]).unwrap();
    assert_eq!(n, vec![10]);
}

#[test]
fn index_probe_works_through_bind_parameters() {
    let db = indexed_db(2000);
    let stmt = db.prepare("SELECT v FROM t WHERE k = $1").unwrap();
    let (ix_before, _, _, _) = db.access_stats();
    let q = stmt.query(&[Value::Int(42)]).unwrap();
    assert_eq!(q.rows[0][0], Value::Text("r42".into()));
    let q = stmt.query(&[Value::Int(7)]).unwrap();
    assert_eq!(q.rows[0][0], Value::Text("r7".into()));
    let (ix_after, _, _, _) = db.access_stats();
    assert_eq!(ix_after, ix_before + 2, "both executions probe the index");
}

// --- joins -----------------------------------------------------------------

fn join_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE big (k int, v text)").unwrap();
    db.execute("CREATE TABLE small (k int, w float)").unwrap();
    let ins = db.prepare("INSERT INTO big VALUES ($1, $2)").unwrap();
    for i in 0..200 {
        ins.query(&[Value::Int(i), Value::Text(format!("b{i}"))])
            .unwrap();
    }
    let ins = db.prepare("INSERT INTO small VALUES ($1, $2)").unwrap();
    for i in 0..40 {
        ins.query(&[Value::Int(i * 3), Value::Float(i as f64)])
            .unwrap();
    }
    db
}

#[test]
fn equi_join_hashes_and_matches_nested_loop() {
    let db = join_db();
    let sql = "SELECT big.v, small.w FROM big JOIN small ON big.k = small.k \
               WHERE small.w < 30.0 ORDER BY small.w";
    let plan = plan_of(&db, sql);
    assert!(plan.contains("HashJoin"), "{plan}");
    assert!(plan.contains("Hash Cond: (big.k = small.k)"), "{plan}");
    let (_, _, hj_before, _) = db.access_stats();
    let hashed: Vec<(String, f64)> = db.query_as(sql, &[]).unwrap();
    let (_, _, hj_after, _) = db.access_stats();
    assert_eq!(hj_after, hj_before + 1);
    db.set_hash_join_enabled(false);
    assert!(!plan_of(&db, sql).contains("HashJoin"));
    let nested: Vec<(String, f64)> = db.query_as(sql, &[]).unwrap();
    assert_eq!(hashed, nested);
    assert_eq!(hashed.len(), 30);
    assert_eq!(hashed[1], ("b3".into(), 1.0));
}

#[test]
fn join_on_is_sugar_for_comma_join_plus_where() {
    let db = join_db();
    let on: Vec<(i64, f64)> = db
        .query_as(
            "SELECT big.k, small.w FROM big JOIN small ON big.k = small.k ORDER BY big.k",
            &[],
        )
        .unwrap();
    let comma: Vec<(i64, f64)> = db
        .query_as(
            "SELECT big.k, small.w FROM big, small WHERE big.k = small.k ORDER BY big.k",
            &[],
        )
        .unwrap();
    assert_eq!(on, comma);
    assert_eq!(on.len(), 40);
}

#[test]
fn hash_join_skips_null_keys_like_nested_loop() {
    let db = Database::new();
    db.execute("CREATE TABLE a (k int)").unwrap();
    db.execute("CREATE TABLE b (k int)").unwrap();
    // Enough rows that the cost model picks the hash join.
    for i in 0..30 {
        db.execute(&format!("INSERT INTO a VALUES ({i}), (NULL)"))
            .unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i}), (NULL)"))
            .unwrap();
    }
    let sql = "SELECT count(*) FROM a JOIN b ON a.k = b.k";
    assert!(plan_of(&db, sql).contains("HashJoin"));
    let n: Vec<i64> = db.query_as(sql, &[]).unwrap();
    assert_eq!(n, vec![30], "NULL = NULL matches nothing");
}

#[test]
fn mixed_type_join_keys_fall_back_to_nested_loop() {
    let db = Database::new();
    db.execute("CREATE TABLE a (k int)").unwrap();
    db.execute("CREATE TABLE b (k float)").unwrap();
    for i in 0..30 {
        db.execute(&format!("INSERT INTO a VALUES ({i})")).unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i}.0)"))
            .unwrap();
    }
    // int-vs-float keys compare numerically; hashing would need a
    // cross-type key, so the planner keeps the nested loop.
    let sql = "SELECT count(*) FROM a JOIN b ON a.k = b.k";
    assert!(!plan_of(&db, sql).contains("HashJoin"));
    let n: Vec<i64> = db.query_as(sql, &[]).unwrap();
    assert_eq!(n, vec![30]);
}

// --- count(DISTINCT …) -----------------------------------------------------

#[test]
fn count_distinct_ungrouped_and_grouped() {
    let db = Database::new();
    db.execute("CREATE TABLE r (site text, day int)").unwrap();
    db.execute("INSERT INTO r VALUES ('a', 1), ('a', 1), ('a', 2), ('b', 1), ('b', 1), (NULL, 9)")
        .unwrap();
    // NULLs don't count; duplicates collapse.
    let q = db
        .execute("SELECT count(DISTINCT site), count(site), count(*) FROM r")
        .unwrap();
    assert_eq!(q.rows[0], vec![Value::Int(2), Value::Int(5), Value::Int(6)]);
    // Per group.
    let q = db
        .execute(
            "SELECT site, count(DISTINCT day) FROM r WHERE site IS NOT NULL \
             GROUP BY site ORDER BY site",
        )
        .unwrap();
    assert_eq!(q.rows[0], vec![Value::Text("a".into()), Value::Int(2)]);
    assert_eq!(q.rows[1], vec![Value::Text("b".into()), Value::Int(1)]);
    // count(DISTINCT *) is not a thing; DISTINCT needs an argument list.
    assert!(db.execute("SELECT count(DISTINCT *) FROM r").is_err());
    // DISTINCT inside a non-aggregate call is rejected.
    let err = db
        .execute("SELECT abs(DISTINCT day) FROM r")
        .unwrap_err()
        .to_string();
    assert!(err.contains("is not an aggregate function"), "{err}");
}

// --- unique constraints ----------------------------------------------------

#[test]
fn unique_index_rejects_duplicates_with_postgres_wording() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int, v text)").unwrap();
    db.execute("CREATE UNIQUE INDEX t_k ON t (k)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        .unwrap();
    let err = db
        .execute("INSERT INTO t VALUES (2, 'dup')")
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "constraint violation: duplicate key value violates unique constraint \"t_k\""
    );
    // A multi-row insert with an internal duplicate is rejected whole.
    assert!(db
        .execute("INSERT INTO t VALUES (3, 'c'), (3, 'd')")
        .is_err());
    let n: Vec<i64> = db.query_as("SELECT count(*) FROM t", &[]).unwrap();
    assert_eq!(n, vec![2], "failed inserts leave no partial rows");
    // UPDATE onto an existing key is a violation; re-asserting a row's
    // own key is not (the superseded version doesn't conflict).
    assert!(db.execute("UPDATE t SET k = 1 WHERE k = 2").is_err());
    db.execute("UPDATE t SET v = 'a2' WHERE k = 1").unwrap();
    // NULLs never conflict, as in PostgreSQL.
    db.execute("INSERT INTO t VALUES (NULL, 'n1'), (NULL, 'n2')")
        .unwrap();
}

#[test]
fn create_unique_index_fails_on_existing_duplicates() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (1)").unwrap();
    let err = db
        .execute("CREATE UNIQUE INDEX t_k ON t (k)")
        .unwrap_err()
        .to_string();
    assert!(err.contains("duplicate key value"), "{err}");
    // The failed build leaves no index behind.
    assert!(db.execute("DROP INDEX t_k").is_err());
    // A plain (non-unique) index over the same data is fine.
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
}

#[test]
fn unique_check_applies_to_streaming_insert_select() {
    let db = Database::new();
    db.execute("CREATE TABLE src (k int)").unwrap();
    db.execute("INSERT INTO src VALUES (1), (2), (2)").unwrap();
    db.execute("CREATE TABLE dst (k int)").unwrap();
    db.execute("CREATE UNIQUE INDEX dst_k ON dst (k)").unwrap();
    let err = db
        .execute("INSERT INTO dst SELECT k FROM src")
        .unwrap_err()
        .to_string();
    assert!(err.contains("duplicate key value"), "{err}");
    let n: Vec<i64> = db.query_as("SELECT count(*) FROM dst", &[]).unwrap();
    assert_eq!(n, vec![0], "the statement aborts as a unit");
}

// --- index maintenance under DML -------------------------------------------

/// Regression for the single-version in-place UPDATE/DELETE fast path:
/// payload overwrites and version removals must keep index entries
/// consistent, or later probes return wrong rows.
#[test]
fn in_place_update_and_delete_keep_the_index_consistent() {
    let db = indexed_db(2000);
    // Auto-commit UPDATE with no pins and no old snapshots takes the
    // in-place overwrite path.
    db.execute("UPDATE t SET k = 5000 WHERE k = 77").unwrap();
    let hits = |k: i64| -> Vec<String> {
        let (ix_before, _, _, _) = db.access_stats();
        let r = db
            .query_as(&format!("SELECT v FROM t WHERE k = {k}"), &[])
            .unwrap();
        let (ix_after, _, _, _) = db.access_stats();
        assert_eq!(ix_after, ix_before + 1, "lookup must use the index");
        r
    };
    assert_eq!(hits(77), Vec::<String>::new(), "old key must be unindexed");
    assert_eq!(hits(5000), vec!["r77".to_string()]);
    // In-place DELETE removes versions and renumbers positions; probes
    // for the surviving keys must still land on the right rows.
    db.execute("DELETE FROM t WHERE k = 100").unwrap();
    assert_eq!(hits(100), Vec::<String>::new());
    assert_eq!(hits(101), vec!["r101".to_string()]);
    assert_eq!(hits(1999), vec!["r1999".to_string()]);
    // Compaction rebuilds the index; correctness must survive a vacuum.
    db.vacuum();
    assert_eq!(hits(5000), vec!["r77".to_string()]);
    assert_eq!(hits(101), vec!["r101".to_string()]);
}

#[test]
fn index_scans_respect_mvcc_snapshots_mid_stream() {
    let db = indexed_db(2000);
    // Open a streaming cursor whose plan probes the index…
    let mut rows = db
        .query_rows("SELECT v FROM t WHERE k > 1990", &[])
        .unwrap();
    let first = rows.next().unwrap().unwrap();
    assert_eq!(first[0], Value::Text("r1991".into()));
    // …then commit matching rows behind its back: the open snapshot
    // must not see them.
    db.execute("INSERT INTO t VALUES (1995, 'late')").unwrap();
    let rest: Vec<String> = rows.map(|r| r.unwrap()[0].to_string()).collect();
    assert_eq!(rest.len(), 8, "snapshot excludes the late insert");
    // A fresh scan sees the new row alongside the original.
    let n: Vec<i64> = db
        .query_as("SELECT count(*) FROM t WHERE k = 1995", &[])
        .unwrap();
    assert_eq!(n, vec![2]);
}

// --- DDL, transactions and rollback ----------------------------------------

#[test]
fn create_and_drop_index_roll_back_with_the_transaction() {
    let db = indexed_db(2000);
    // DROP INDEX inside a rolled-back transaction comes back.
    db.execute("BEGIN").unwrap();
    db.execute("DROP INDEX t_k").unwrap();
    assert!(plan_of(&db, "SELECT v FROM t WHERE k = 7").contains("SeqScan"));
    db.execute("ROLLBACK").unwrap();
    let plan = plan_of(&db, "SELECT v FROM t WHERE k = 7");
    assert!(plan.contains("IndexScan using t_k"), "{plan}");
    // CREATE INDEX inside a rolled-back transaction disappears.
    db.execute("BEGIN").unwrap();
    db.execute("CREATE UNIQUE INDEX t_v ON t (v)").unwrap();
    assert!(plan_of(&db, "SELECT k FROM t WHERE v = 'r5'").contains("IndexScan using t_v"));
    db.execute("ROLLBACK").unwrap();
    assert!(plan_of(&db, "SELECT k FROM t WHERE v = 'r5'").contains("SeqScan"));
    assert!(db.execute("DROP INDEX t_v").is_err());
    // And a committed CREATE INDEX persists.
    db.execute("BEGIN").unwrap();
    db.execute("CREATE INDEX t_v ON t (v)").unwrap();
    db.execute("COMMIT").unwrap();
    db.execute("DROP INDEX t_v").unwrap();
}

#[test]
fn index_ddl_error_paths() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int, m variant)").unwrap();
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    // Duplicate index name, even on another table.
    db.execute("CREATE TABLE u (k int)").unwrap();
    let err = db.execute("CREATE INDEX t_k ON u (k)").unwrap_err();
    assert_eq!(
        err.to_string(),
        "constraint violation: relation \"t_k\" already exists"
    );
    // Unknown table / unknown column / unindexable column type.
    assert!(db.execute("CREATE INDEX i ON nope (k)").is_err());
    assert!(db.execute("CREATE INDEX i ON t (nope)").is_err());
    let err = db.execute("CREATE INDEX i ON t (m)").unwrap_err();
    assert!(
        err.to_string()
            .contains("cannot create an index on variant"),
        "{err}"
    );
    // DROP of a missing index.
    let err = db.execute("DROP INDEX missing").unwrap_err();
    assert_eq!(
        err.to_string(),
        "execution error: index \"missing\" does not exist"
    );
}

// --- statistics ------------------------------------------------------------

#[test]
fn analyze_statement_and_srf_report_row_counts() {
    let db = Database::new();
    db.execute("CREATE TABLE a (k int)").unwrap();
    db.execute("CREATE TABLE b (k int)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    db.execute("ANALYZE a").unwrap();
    db.execute("ANALYZE").unwrap();
    assert!(db.execute("ANALYZE nope").is_err());
    let rows: Vec<(String, i64)> = db
        .query_as("SELECT * FROM pgfmu_analyze() ORDER BY 1", &[])
        .unwrap();
    assert_eq!(rows, vec![("a".into(), 3), ("b".into(), 0)]);
    let rows: Vec<(String, i64)> = db
        .query_as("SELECT * FROM pgfmu_analyze('a')", &[])
        .unwrap();
    assert_eq!(rows, vec![("a".into(), 3)]);
    let stats: Vec<i64> = db
        .query_as(
            "SELECT value FROM pgfmu_stats() WHERE stat = 'analyze_runs'",
            &[],
        )
        .unwrap();
    assert!(stats[0] >= 4, "explicit analyzes are counted: {}", stats[0]);
}

#[test]
fn stale_statistics_refresh_automatically() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    // First plan over the indexed table collects stats without ANALYZE
    // ever running; the tiny table stays sequential.
    assert!(plan_of(&db, "SELECT k FROM t WHERE k = 1").contains("SeqScan"));
    let (_, _, _, runs) = db.access_stats();
    assert!(runs >= 1, "auto-collection must run: {runs}");
    // Grow the table far past the staleness threshold; replanning picks
    // up fresh counts and flips to the index without an explicit ANALYZE.
    let ins = db.prepare("INSERT INTO t VALUES ($1)").unwrap();
    for i in 2..=4000 {
        ins.query(&[Value::Int(i)]).unwrap();
    }
    let plan = plan_of(&db, "SELECT k FROM t WHERE k = 7");
    assert!(plan.contains("IndexScan using t_k"), "{plan}");
}

// --- vectorized batch execution --------------------------------------------

#[test]
fn explain_reports_the_vectorized_choice_and_top_k() {
    let db = Database::new();
    // Pin the toggle: CI sweeps PGFMU_VECTORIZED over the whole suite,
    // and this test asserts both sides of the choice explicitly.
    db.set_vectorized_enabled(true);
    db.execute("CREATE TABLE m (g int, x float)").unwrap();
    // Grouped aggregates and single-key ORDER BY ... LIMIT vectorize.
    let plan = plan_of(&db, "SELECT g, sum(x) FROM m GROUP BY g");
    assert!(plan.contains("Vectorized: true"), "{plan}");
    let plan = plan_of(&db, "SELECT x FROM m ORDER BY x DESC LIMIT 3");
    assert!(plan.contains("Vectorized: true"), "{plan}");
    assert!(plan.contains("Top-K (k=3)"), "{plan}");
    // A full sort is still vectorized, but there is no Top-K node.
    let plan = plan_of(&db, "SELECT x FROM m ORDER BY x");
    assert!(plan.contains("Vectorized: true"), "{plan}");
    assert!(!plan.contains("Top-K"), "{plan}");
    // Multi-key sorts and DISTINCT stay on the scalar path.
    let plan = plan_of(&db, "SELECT x FROM m ORDER BY g, x LIMIT 3");
    assert!(plan.contains("Vectorized: false"), "{plan}");
    assert!(!plan.contains("Top-K"), "{plan}");
    let plan = plan_of(&db, "SELECT DISTINCT g FROM m ORDER BY g");
    assert!(plan.contains("Vectorized: false"), "{plan}");
    // The session toggle re-plans everything scalar, and back.
    db.set_vectorized_enabled(false);
    let plan = plan_of(&db, "SELECT g, sum(x) FROM m GROUP BY g");
    assert!(plan.contains("Vectorized: false"), "{plan}");
    db.set_vectorized_enabled(true);
    let plan = plan_of(&db, "SELECT g, sum(x) FROM m GROUP BY g");
    assert!(plan.contains("Vectorized: true"), "{plan}");
}

#[test]
fn runtime_fallback_matches_scalar_errors_and_ticks_the_counter() {
    let db = Database::new();
    db.set_vectorized_enabled(true);
    db.execute("CREATE TABLE f (a int, b int)").unwrap();
    db.execute("INSERT INTO f VALUES (1, 0)").unwrap();
    db.execute("INSERT INTO f VALUES (2, 1)").unwrap();
    // Division by zero inside the WHERE clause: the batch kernel
    // declines at run time and the scalar rerun over the same snapshot
    // raises the error — the wording must match the scalar-only path.
    let (_, _, fb_before) = db.vectorized_stats();
    let vectorized_err = db
        .execute("SELECT count(*) FROM f WHERE a / b > 0")
        .unwrap_err()
        .to_string();
    let (_, _, fb_after) = db.vectorized_stats();
    assert!(fb_after > fb_before, "the decline must tick the counter");
    db.set_vectorized_enabled(false);
    let scalar_err = db
        .execute("SELECT count(*) FROM f WHERE a / b > 0")
        .unwrap_err()
        .to_string();
    db.set_vectorized_enabled(true);
    assert_eq!(vectorized_err, scalar_err);
}

#[test]
fn text_predicates_run_on_the_batch_path() {
    let db = Database::new();
    db.set_vectorized_enabled(true);
    db.execute("CREATE TABLE notes (tag text, n int)").unwrap();
    for (tag, n) in [("a", 1), ("b", 2), ("a", 3), ("c", 4)] {
        db.execute(&format!("INSERT INTO notes VALUES ('{tag}', {n})"))
            .unwrap();
    }
    let (filled_before, _, fb_before) = db.vectorized_stats();
    let q = db
        .execute("SELECT tag, sum(n) FROM notes WHERE tag >= 'b' GROUP BY tag ORDER BY 1")
        .unwrap();
    assert_eq!(
        q.rows,
        vec![
            vec![Value::Text("b".into()), Value::Float(2.0)],
            vec![Value::Text("c".into()), Value::Float(4.0)],
        ]
    );
    let (filled_after, _, fb_after) = db.vectorized_stats();
    assert!(filled_after > filled_before, "the batch must have filled");
    assert_eq!(fb_after, fb_before, "text compare must not fall back");
}
