//! Multi-threaded readers-vs-writer stress tests for MVCC snapshot
//! isolation: while a writer churns the table — through auto-commit
//! statements and through explicit transactions that sometimes roll
//! back — concurrent readers must only ever observe fully-committed,
//! internally consistent states. Run in release mode by CI's
//! concurrency step, where the tighter timing shakes out races the
//! debug build hides.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use pgfmu_sqlmini::{Database, Value};
use threadpool::ThreadPool;

const ROWS: i64 = 64;

/// The writer's invariant: every row of `t` always holds the same value
/// in any committed state, because each round bumps all rows in one
/// statement (or one transaction). A reader that sees two different
/// values has observed a torn, non-snapshot read.
#[test]
fn readers_never_observe_torn_writes() {
    let db = Database::new();
    db.execute("CREATE TABLE t (v int)").unwrap();
    for _ in 0..ROWS {
        db.execute("INSERT INTO t VALUES (0)").unwrap();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        s.spawn(move || {
            for i in 0..200 {
                if i % 3 == 0 {
                    // Transactional rounds; every sixth round rolls
                    // back, which must leave no trace.
                    db.execute("BEGIN").unwrap();
                    db.execute("UPDATE t SET v = v + 1").unwrap();
                    if i % 6 == 0 {
                        db.execute("ROLLBACK").unwrap();
                    } else {
                        db.execute("COMMIT").unwrap();
                    }
                } else {
                    db.execute("UPDATE t SET v = v + 1").unwrap();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Grouped zero-copy scan: one guarded sweep.
                    let q = db
                        .execute("SELECT min(v), max(v), count(*) FROM t")
                        .unwrap();
                    assert_eq!(q.rows[0][0], q.rows[0][1], "torn aggregate snapshot");
                    assert_eq!(q.rows[0][2], Value::Int(ROWS));
                    // Streaming cursor: refills re-acquire the guard
                    // between batches, but the snapshot must hold.
                    let vals: Vec<i64> = db
                        .query_rows("SELECT v FROM t", &[])
                        .unwrap()
                        .map(|r| r.unwrap()[0].as_i64().unwrap())
                        .collect();
                    assert_eq!(vals.len() as i64, ROWS);
                    assert!(
                        vals.windows(2).all(|w| w[0] == w[1]),
                        "torn streaming snapshot: {vals:?}"
                    );
                }
            });
        }
    });
    // Quiesced: compaction (whatever opportunistic GC left behind) and
    // the invariant still hold.
    db.vacuum();
    let q = db.execute("SELECT min(v), max(v) FROM t").unwrap();
    assert_eq!(q.rows[0][0], q.rows[0][1]);
}

/// Writers on distinct rows of the same table proceed concurrently;
/// writers on the *same* row collide: exactly one of two racing
/// transactions commits, the other fails with PostgreSQL's
/// serialization error (first-updater-wins).
#[test]
fn same_row_writers_serialize_first_updater_wins() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int, v int)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0), (2, 0)").unwrap();
    let mut committed = 0u32;
    let mut serialized = 0u32;
    for _ in 0..20 {
        let (a, b) = std::thread::scope(|s| {
            let db = &db;
            let race = |_: ()| {
                db.execute("BEGIN").unwrap();
                let r = db.execute("UPDATE t SET v = v + 1 WHERE k = 1");
                match r {
                    Ok(_) => {
                        db.execute("COMMIT").unwrap();
                        Ok(())
                    }
                    Err(e) => {
                        db.execute("ROLLBACK").unwrap();
                        Err(e)
                    }
                }
            };
            let ta = s.spawn(move || race(()));
            let tb = s.spawn(move || race(()));
            (ta.join().unwrap(), tb.join().unwrap())
        });
        for r in [a, b] {
            match r {
                Ok(()) => committed += 1,
                Err(e) => {
                    assert!(
                        e.to_string().contains("could not serialize access"),
                        "unexpected error: {e}"
                    );
                    serialized += 1;
                }
            }
        }
    }
    assert_eq!(committed + serialized, 40);
    // Every committed increment — and only those — is in the row.
    let q = db.execute("SELECT v FROM t WHERE k = 1").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(committed as i64));
}

/// Index-backed range and point scans observe the same snapshot rules
/// as sequential scans: while a writer bumps every row's value (and the
/// unique index on `k` is maintained through each round), an index range
/// scan must never see a torn state, and a point probe always finds its
/// row exactly once.
#[test]
fn index_scans_are_snapshot_consistent_under_writes() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k int, v int)").unwrap();
    for i in 0..ROWS {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .unwrap();
    }
    db.execute("CREATE UNIQUE INDEX t_k ON t (k)").unwrap();
    db.execute("ANALYZE t").unwrap();
    let lo = ROWS - 8;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        s.spawn(move || {
            for i in 0..150 {
                if i % 3 == 0 {
                    db.execute("BEGIN").unwrap();
                    db.execute("UPDATE t SET v = v + 1").unwrap();
                    if i % 6 == 0 {
                        db.execute("ROLLBACK").unwrap();
                    } else {
                        db.execute("COMMIT").unwrap();
                    }
                } else {
                    db.execute("UPDATE t SET v = v + 1").unwrap();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        for _ in 0..3 {
            s.spawn(move || {
                // At least one pass even if the writer already finished
                // (release builds can drain all 150 rounds before the
                // readers' first check).
                loop {
                    // One statement = one snapshot: an index range scan
                    // over the tail must agree with itself.
                    let q = db
                        .execute(&format!(
                            "SELECT min(v), max(v), count(*) FROM t WHERE k >= {lo}"
                        ))
                        .unwrap();
                    assert_eq!(q.rows[0][0], q.rows[0][1], "torn index scan");
                    assert_eq!(q.rows[0][2], Value::Int(8));
                    // Point probe: exactly one version of the row visible.
                    let q = db.execute("SELECT v FROM t WHERE k = 3").unwrap();
                    assert_eq!(q.rows.len(), 1, "duplicate or missing version");
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
    });
    let (index_scans, _, _, _) = db.access_stats();
    assert!(index_scans > 0, "the readers must have probed the index");
    // Quiesced, compacted, and still consistent.
    db.vacuum();
    let q = db
        .execute(&format!("SELECT count(*) FROM t WHERE k >= {lo}"))
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(8));
}

/// Fleet-shaped stress: a worker pool (width from `PGFMU_FLEET_WORKERS`,
/// default 4) retires instance-result tasks — multi-row result inserts
/// plus a per-task status update — while readers stream under snapshot
/// isolation and a vacuum thread compacts continuously. Tasks follow the
/// fleet session rule: reset the thread-keyed session on entry, because
/// some tasks deliberately "crash" between BEGIN and COMMIT and the next
/// task reusing that worker thread must not inherit the open
/// transaction. Readers must only ever see whole committed batches.
#[test]
fn fleet_writers_with_streaming_readers_and_vacuum() {
    const TASKS: usize = 96;
    const BATCH: i64 = 4;
    let workers: usize = std::env::var("PGFMU_FLEET_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let db = Database::new();
    db.execute("CREATE TABLE results (inst int, task int, v float)")
        .unwrap();
    db.execute("CREATE TABLE state (task int, done int)")
        .unwrap();
    for t in 0..TASKS {
        db.execute(&format!("INSERT INTO state VALUES ({t}, 0)"))
            .unwrap();
    }
    let committed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        for _ in 0..2 {
            s.spawn(move || loop {
                // Committed result batches are atomic: every task's group
                // is complete or absent, never partial.
                let q = db
                    .execute("SELECT task, count(*) FROM results GROUP BY task")
                    .unwrap();
                for row in &q.rows {
                    assert_eq!(row[1], Value::Int(BATCH), "partial batch visible");
                }
                let q = db.execute("SELECT count(*) FROM results").unwrap();
                assert_eq!(
                    q.rows[0][0].as_i64().unwrap() % BATCH,
                    0,
                    "torn total under snapshot isolation"
                );
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            });
        }
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.vacuum();
                std::thread::yield_now();
            }
        });
        let pool = ThreadPool::new(workers);
        pool.run(TASKS, |task| {
            // Fleet session rule: a pooled worker starts every task from
            // a clean, auto-commit session.
            db.reset_session();
            let inst = task % 8;
            match task % 8 {
                3 => {
                    // Simulated mid-transaction death: BEGIN + write,
                    // then drop the task without COMMIT. The open
                    // transaction is left parked on this worker thread.
                    db.execute("BEGIN").unwrap();
                    db.execute(&format!(
                        "INSERT INTO results VALUES ({inst}, {task}, -1.0)"
                    ))
                    .unwrap();
                }
                5 => {
                    // Explicit transaction that changes its mind.
                    db.execute("BEGIN").unwrap();
                    db.execute(&format!(
                        "INSERT INTO results VALUES ({inst}, {task}, -2.0), \
                         ({inst}, {task}, -2.0)"
                    ))
                    .unwrap();
                    db.execute("ROLLBACK").unwrap();
                }
                _ => {
                    // One atomic batch of instance results + this task's
                    // own status row (no cross-task write conflicts).
                    let vals: Vec<String> = (0..BATCH)
                        .map(|_| format!("({inst}, {task}, {}.0)", task))
                        .collect();
                    db.execute(&format!("INSERT INTO results VALUES {}", vals.join(", ")))
                        .unwrap();
                    db.execute(&format!("UPDATE state SET done = 1 WHERE task = {task}"))
                        .unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .unwrap();
        // Sweep: park exactly one reset task on every worker (the barrier
        // forces the distribution) so transactions leaked by tail-end
        // "crash" tasks are reclaimed before the pool idles.
        let barrier = Barrier::new(workers);
        let leaked: u64 = pool
            .run(workers, |_| {
                barrier.wait();
                u64::from(db.reset_session())
            })
            .unwrap()
            .iter()
            .sum();
        assert!(
            leaked <= TASKS.div_ceil(8) as u64,
            "at most one leaked transaction per crash task"
        );
        stop.store(true, Ordering::Relaxed);
    });
    // Only whole, committed batches survive — crash and rollback tasks
    // left no trace.
    let done = committed.load(Ordering::Relaxed) as i64;
    let q = db.execute("SELECT count(*) FROM results").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(done * BATCH));
    let min_v = db.execute("SELECT min(v) FROM results").unwrap().rows[0][0]
        .as_f64()
        .unwrap();
    assert!(min_v >= 0.0, "no uncommitted or rolled-back value visible");
    let q = db
        .execute("SELECT count(*) FROM state WHERE done = 1")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(done));
    // No leaked snapshot pin holds back the garbage collector: churn the
    // whole table inside a transaction (the transactional write path
    // always versions rows — auto-commit may overwrite in place and
    // leave nothing to collect), then the dead versions must be
    // reclaimable by vacuum. A surviving pin would hold the watermark
    // below the churn's commit stamp and free nothing.
    assert!(!db.in_transaction());
    let gc_before = db.gc_stats();
    db.execute("BEGIN").unwrap();
    db.execute("UPDATE state SET done = done").unwrap();
    db.execute("COMMIT").unwrap();
    db.vacuum();
    assert!(
        db.gc_stats() > gc_before,
        "a leaked transaction pin survived the sweep"
    );
}

/// The vectorized batch path fills its columns from the same pinned
/// MVCC snapshot the scalar path would stream, so a columnar reader
/// racing a batch-committing writer must never observe a torn batch.
/// The writer only ever commits whole groups of 8 rows in one
/// transaction; a vectorized grouped aggregate must therefore see every
/// group either complete or absent, and a vectorized top-K over the
/// float column must return rows from a single committed batch.
#[test]
fn vectorized_scans_are_snapshot_consistent_under_writes() {
    let db = Database::new();
    // Pin the toggle: the CI sweep sets PGFMU_VECTORIZED=0 for the
    // scalar side, but this test is specifically about the batch path.
    db.set_vectorized_enabled(true);
    db.execute("CREATE TABLE t (g int, v float)").unwrap();
    // Seed one committed batch so the readers always have rows.
    db.execute("BEGIN").unwrap();
    for _ in 0..8 {
        db.execute("INSERT INTO t VALUES (0, 0)").unwrap();
    }
    db.execute("COMMIT").unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        s.spawn(move || {
            for batch in 1..60i64 {
                db.execute("BEGIN").unwrap();
                for _ in 0..8 {
                    db.execute(&format!("INSERT INTO t VALUES ({batch}, {batch})"))
                        .unwrap();
                }
                db.execute("COMMIT").unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        for _ in 0..2 {
            s.spawn(move || loop {
                // One statement = one snapshot: the writer commits whole
                // batches, so every visible group holds exactly 8 rows.
                let q = db
                    .execute("SELECT g, count(*) FROM t GROUP BY g ORDER BY 1")
                    .unwrap();
                assert!(!q.rows.is_empty());
                for row in &q.rows {
                    assert_eq!(row[1], Value::Int(8), "torn group {:?}", row[0]);
                }
                // Top-K over the float column: the 5 largest keys all
                // come from the newest fully-committed batch of 8, so
                // they are all the same value.
                let q = db
                    .execute("SELECT v FROM t ORDER BY v DESC LIMIT 5")
                    .unwrap();
                assert_eq!(q.rows.len(), 5);
                for row in &q.rows {
                    assert_eq!(row[0], q.rows[0][0], "top-K mixed torn batches");
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            });
        }
    });
    let (filled, ops, _) = db.vectorized_stats();
    assert!(
        filled > 0 && ops > 0,
        "the readers were expected to take the vectorized path"
    );
}
