//! Tier-2 tests for the SQL dialect corners the cross-crate integration
//! suite relies on: aggregate/plain-column mixing rules, PostgreSQL-style
//! `''` string escaping, and `LATERAL`-style set-returning functions in
//! `FROM`.

use pgfmu_sqlmini::{Database, QueryResult, Value};

fn db_with_measurements() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE m (id int, v float)").unwrap();
    for (id, v) in [(1, 10.0), (2, 20.0), (3, 30.0)] {
        db.execute(&format!("INSERT INTO m VALUES ({id}, {v})"))
            .unwrap();
    }
    db
}

// --- aggregates without GROUP BY -------------------------------------------

#[test]
fn plain_column_next_to_aggregate_is_an_error() {
    let db = db_with_measurements();
    let err = db
        .execute("SELECT id, count(*) FROM m")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("must appear in an aggregate function"),
        "unexpected error: {err}"
    );
}

#[test]
fn aggregate_inside_where_is_an_error() {
    let db = db_with_measurements();
    let err = db
        .execute("SELECT id FROM m WHERE count(*) > 1")
        .unwrap_err()
        .to_string();
    assert!(err.contains("not allowed here"), "unexpected error: {err}");
}

#[test]
fn arithmetic_over_aggregates_is_allowed() {
    let db = db_with_measurements();
    let q = db
        .execute("SELECT sum(v) / count(*), max(v) - min(v) FROM m")
        .unwrap();
    assert_eq!(q.rows[0][0].as_f64().unwrap(), 20.0);
    assert_eq!(q.rows[0][1].as_f64().unwrap(), 20.0);
}

#[test]
fn aggregate_over_empty_table_yields_one_row() {
    let db = Database::new();
    db.execute("CREATE TABLE e (v float)").unwrap();
    let q = db
        .execute("SELECT count(*), sum(v), min(v) FROM e")
        .unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.rows[0][0], Value::Int(0));
    assert_eq!(q.rows[0][1], Value::Null);
    assert_eq!(q.rows[0][2], Value::Null);
}

// --- quoted-string escaping ------------------------------------------------

#[test]
fn doubled_quote_escapes_in_literals_round_trip_through_storage() {
    let db = Database::new();
    db.execute("CREATE TABLE notes (body text)").unwrap();
    db.execute("INSERT INTO notes VALUES ('O''Brien''s model')")
        .unwrap();
    let q = db.execute("SELECT body FROM notes").unwrap();
    assert_eq!(q.rows[0][0], Value::Text("O'Brien's model".into()));
    // The stored value (with a real quote) is reachable via an escaped
    // comparison literal, so re-generated SQL can round-trip it.
    let q = db
        .execute("SELECT count(*) FROM notes WHERE body = 'O''Brien''s model'")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(1));
}

#[test]
fn escaped_quotes_survive_function_arguments() {
    let db = Database::new();
    db.register_scalar("observed_arg", |_db, args| Ok(args[0].clone()));
    let q = db.execute("SELECT observed_arg('it''s; quoted')").unwrap();
    assert_eq!(q.rows[0][0], Value::Text("it's; quoted".into()));
}

#[test]
fn unterminated_string_is_an_error_not_a_panic() {
    let db = Database::new();
    assert!(db.execute("SELECT 'dangling").is_err());
    // A trailing escape (`''`) keeps the literal open — still an error.
    assert!(db.execute("SELECT 'dangling''").is_err());
}

// --- LATERAL-style set-returning functions in FROM -------------------------

#[test]
fn srf_in_from_expands_to_rows() {
    let db = Database::new();
    let q = db
        .execute("SELECT * FROM generate_series(1, 4) AS g")
        .unwrap();
    let got: Vec<i64> = q.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![1, 2, 3, 4]);
}

#[test]
fn srf_arguments_reference_columns_to_their_left() {
    let db = db_with_measurements();
    // The paper's multi-instance pattern: a function in FROM whose
    // arguments come from the preceding table item (implicit LATERAL).
    let q = db
        .execute("SELECT id, s FROM m, LATERAL generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    let got: Vec<(i64, i64)> = q
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)]);
}

#[test]
fn lateral_keyword_is_optional() {
    let db = db_with_measurements();
    let with = db
        .execute("SELECT id, s FROM m, LATERAL generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    let without = db
        .execute("SELECT id, s FROM m, generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    assert_eq!(with.rows, without.rows);
}

#[test]
fn registered_srf_can_reenter_the_database() {
    // fmu_parest-style re-entrancy: the SRF body runs its own query
    // against the same database while the outer query is executing.
    let db = db_with_measurements();
    db.register_table_fn("values_above", |db, args| {
        let threshold = args[0].as_f64()?;
        let inner = db.execute(&format!("SELECT v FROM m WHERE v > {threshold}"))?;
        let mut out = QueryResult::new(vec!["v".into()]);
        out.rows = inner.rows;
        Ok(out)
    });
    let q = db
        .execute("SELECT v FROM values_above(15.0) AS v ORDER BY v")
        .unwrap();
    let got: Vec<f64> = q.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(got, vec![20.0, 30.0]);
}

#[test]
fn multi_column_srf_keeps_its_own_column_names() {
    let db = Database::new();
    db.register_table_fn("pair_rows", |_db, _args| {
        let mut out = QueryResult::new(vec!["a".into(), "b".into()]);
        out.rows.push(vec![Value::Int(1), Value::Int(2)]);
        out.rows.push(vec![Value::Int(3), Value::Int(4)]);
        Ok(out)
    });
    let q = db
        .execute("SELECT a, b FROM pair_rows() AS p ORDER BY a")
        .unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[1], vec![Value::Int(3), Value::Int(4)]);
}
