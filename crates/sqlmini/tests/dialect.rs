//! Tier-2 tests for the SQL dialect corners the cross-crate integration
//! suite relies on: aggregate/plain-column mixing rules, grouped
//! aggregation (GROUP BY / HAVING), PostgreSQL-style `''` string escaping,
//! and `LATERAL`-style set-returning functions in `FROM`.

use pgfmu_sqlmini::{Database, QueryResult, Value};

fn db_with_measurements() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE m (id int, v float)").unwrap();
    for (id, v) in [(1, 10.0), (2, 20.0), (3, 30.0)] {
        db.execute(&format!("INSERT INTO m VALUES ({id}, {v})"))
            .unwrap();
    }
    db
}

// --- aggregates without GROUP BY -------------------------------------------

#[test]
fn plain_column_next_to_aggregate_is_an_error() {
    let db = db_with_measurements();
    let err = db
        .execute("SELECT id, count(*) FROM m")
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "column \"id\" must appear in the GROUP BY clause \
         or be used in an aggregate function"
    );
    // Qualified references name the qualifier, as PostgreSQL does.
    let err = db
        .execute("SELECT m.id, count(*) FROM m")
        .unwrap_err()
        .to_string();
    assert!(err.contains("column \"m.id\" must appear"), "{err}");
}

#[test]
fn aggregate_inside_where_is_an_error() {
    let db = db_with_measurements();
    let err = db
        .execute("SELECT id FROM m WHERE count(*) > 1")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate functions are not allowed in WHERE");
    // The same rule applies under grouping and in DML predicates.
    let err = db
        .execute("SELECT id FROM m WHERE sum(v) > 1 GROUP BY id")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate functions are not allowed in WHERE");
    let err = db
        .execute("DELETE FROM m WHERE v = max(v)")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate functions are not allowed in WHERE");
    let err = db
        .execute("UPDATE m SET v = sum(v)")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate functions are not allowed in UPDATE");
}

#[test]
fn arithmetic_over_aggregates_is_allowed() {
    let db = db_with_measurements();
    let q = db
        .execute("SELECT sum(v) / count(*), max(v) - min(v) FROM m")
        .unwrap();
    assert_eq!(q.rows[0][0].as_f64().unwrap(), 20.0);
    assert_eq!(q.rows[0][1].as_f64().unwrap(), 20.0);
}

#[test]
fn aggregate_over_empty_table_yields_one_row() {
    let db = Database::new();
    db.execute("CREATE TABLE e (v float)").unwrap();
    let q = db
        .execute("SELECT count(*), sum(v), min(v) FROM e")
        .unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.rows[0][0], Value::Int(0));
    assert_eq!(q.rows[0][1], Value::Null);
    assert_eq!(q.rows[0][2], Value::Null);
}

// --- grouped aggregation (GROUP BY / HAVING) -------------------------------

fn db_with_readings() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE r (site text, day int, v float)")
        .unwrap();
    for (site, day, v) in [
        ("a", 1, 10.0),
        ("a", 1, 20.0),
        ("a", 2, 5.0),
        ("b", 1, 7.0),
        ("b", 2, 1.0),
    ] {
        db.execute(&format!("INSERT INTO r VALUES ('{site}', {day}, {v})"))
            .unwrap();
    }
    db
}

#[test]
fn group_by_partitions_aggregates_per_key() {
    let db = db_with_readings();
    let q = db
        .execute("SELECT site, count(*), sum(v) FROM r GROUP BY site ORDER BY site")
        .unwrap();
    assert_eq!(q.columns, vec!["site", "count", "sum"]);
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[0][0], Value::Text("a".into()));
    assert_eq!(q.rows[0][1], Value::Int(3));
    assert_eq!(q.rows[0][2].as_f64().unwrap(), 35.0);
    assert_eq!(q.rows[1][1], Value::Int(2));
    assert_eq!(q.rows[1][2].as_f64().unwrap(), 8.0);
}

#[test]
fn group_by_composite_key_and_expression() {
    let db = db_with_readings();
    let q = db
        .execute(
            "SELECT site, day * 10 AS decade, avg(v) FROM r \
             GROUP BY site, day * 10 ORDER BY site, decade",
        )
        .unwrap();
    assert_eq!(q.rows.len(), 4);
    assert_eq!(q.rows[0][1], Value::Int(10));
    assert_eq!(q.rows[0][2].as_f64().unwrap(), 15.0);
    // An ordinal names the select item, as in PostgreSQL.
    let q2 = db
        .execute("SELECT day * 10 AS decade, count(*) FROM r GROUP BY 1 ORDER BY 1")
        .unwrap();
    assert_eq!(q2.rows.len(), 2);
    assert_eq!(q2.rows[0][1], Value::Int(3));
}

#[test]
fn having_filters_groups() {
    let db = db_with_readings();
    let q = db
        .execute(
            "SELECT site, sum(v) FROM r GROUP BY site \
             HAVING sum(v) > 10 ORDER BY site",
        )
        .unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.rows[0][0], Value::Text("a".into()));
    // HAVING without GROUP BY treats the whole input as one group.
    let q = db
        .execute("SELECT sum(v) FROM r HAVING count(*) > 100")
        .unwrap();
    assert_eq!(q.rows.len(), 0);
    let q = db
        .execute("SELECT sum(v) FROM r HAVING count(*) > 1")
        .unwrap();
    assert_eq!(q.rows.len(), 1);
}

#[test]
fn group_by_groups_nulls_together_and_orders_by_aggregate() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k text, v int)").unwrap();
    db.execute("INSERT INTO t VALUES ('x', 1), (NULL, 2), (NULL, 3), ('x', 4)")
        .unwrap();
    let q = db
        .execute("SELECT k, sum(v) FROM t GROUP BY k ORDER BY sum(v) DESC")
        .unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[0][0], Value::Text("x".into()));
    assert_eq!(q.rows[0][1].as_f64().unwrap(), 5.0);
    assert_eq!(q.rows[1][0], Value::Null);
}

#[test]
fn grouped_query_over_empty_input_returns_no_groups() {
    let db = Database::new();
    db.execute("CREATE TABLE e (k text, v float)").unwrap();
    let q = db.execute("SELECT k, count(*) FROM e GROUP BY k").unwrap();
    assert_eq!(q.rows.len(), 0);
    // Without GROUP BY the single whole-input group survives (count = 0).
    let q = db.execute("SELECT count(*) FROM e").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(0));
}

#[test]
fn grouped_error_paths_use_postgres_wording() {
    let db = db_with_readings();
    // Ungrouped column in the select list.
    let err = db
        .execute("SELECT site, day, sum(v) FROM r GROUP BY site")
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "column \"day\" must appear in the GROUP BY clause \
         or be used in an aggregate function"
    );
    // HAVING referencing an ungrouped column (with and without GROUP BY).
    let err = db
        .execute("SELECT sum(v) FROM r GROUP BY site HAVING day > 1")
        .unwrap_err()
        .to_string();
    assert!(err.contains("column \"day\" must appear"), "{err}");
    let err = db
        .execute("SELECT count(*) FROM r HAVING day > 1")
        .unwrap_err()
        .to_string();
    assert!(err.contains("column \"day\" must appear"), "{err}");
    // Aggregates cannot appear in GROUP BY or nest inside each other.
    let err = db
        .execute("SELECT count(*) FROM r GROUP BY sum(v)")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate functions are not allowed in GROUP BY");
    let err = db
        .execute("SELECT sum(count(*)) FROM r GROUP BY site")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "aggregate function calls cannot be nested");
    // Out-of-range ordinals are named.
    let err = db
        .execute("SELECT site FROM r GROUP BY 7")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "GROUP BY position 7 is not in select list");
}

#[test]
fn order_by_alias_and_ordinal_resolution() {
    let db = db_with_readings();
    // An alias in ORDER BY names the output column, even when the
    // underlying expression is an aggregate.
    let q = db
        .execute("SELECT site, sum(v) AS total FROM r GROUP BY site ORDER BY total DESC")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("a".into()));
    // Duplicated aliases over *different* expressions are ambiguous…
    let err = db
        .execute("SELECT day AS x, v AS x FROM r ORDER BY x")
        .unwrap_err()
        .to_string();
    assert_eq!(err, "ORDER BY \"x\" is ambiguous");
    // …but repeating the same expression (wildcard + explicit column) is
    // fine, as in PostgreSQL.
    let q = db.execute("SELECT *, site FROM r ORDER BY site").unwrap();
    assert_eq!(q.rows.len(), 5);
}

#[test]
fn grouping_matches_qualified_and_bare_references() {
    let db = db_with_readings();
    // `GROUP BY site` must satisfy a qualified `r.site` projection (they
    // resolve to the same column) and grouped keys stay usable inside
    // scalar expressions.
    let q = db
        .execute(
            "SELECT r.site || '!' AS tag, max(v) FROM r \
             GROUP BY site ORDER BY tag",
        )
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("a!".into()));
    assert_eq!(q.rows[0][1].as_f64().unwrap(), 20.0);
}

#[test]
fn grouped_queries_work_through_binds_and_streaming() {
    let db = db_with_readings();
    let stmt = db
        .prepare(
            "SELECT site, sum(v * $1) AS weighted FROM r \
             GROUP BY site HAVING sum(v * $1) > $2 ORDER BY site",
        )
        .unwrap();
    assert_eq!(stmt.n_params(), 2);
    let q = stmt
        .query(&[Value::Float(2.0), Value::Float(10.0)])
        .unwrap();
    assert_eq!(q.rows.len(), 2, "sums 70 and 16 both clear 10");
    // Re-execute with different binds: the cached plan regroups.
    let q = stmt
        .query(&[Value::Float(2.0), Value::Float(30.0)])
        .unwrap();
    assert_eq!(q.rows.len(), 1);
    assert_eq!(q.rows[0][1].as_f64().unwrap(), 70.0);
    // The streaming surface yields the same (materialized) groups.
    let rows: Vec<Vec<Value>> = stmt
        .query_rows(&[Value::Float(2.0), Value::Float(30.0)])
        .unwrap()
        .collect::<pgfmu_sqlmini::Result<_>>()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Text("a".into()));
}

// --- SELECT DISTINCT -------------------------------------------------------

#[test]
fn select_distinct_deduplicates_rows() {
    let db = db_with_readings();
    let q = db
        .execute("SELECT DISTINCT site FROM r ORDER BY site")
        .unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[0][0], Value::Text("a".into()));
    assert_eq!(q.rows[1][0], Value::Text("b".into()));
    // Composite DISTINCT rows dedup as whole tuples.
    let q = db
        .execute("SELECT DISTINCT site, day FROM r ORDER BY site, day")
        .unwrap();
    assert_eq!(q.rows.len(), 4);
    // DISTINCT over an expression.
    let q = db.execute("SELECT DISTINCT day * 10 FROM r").unwrap();
    assert_eq!(q.rows.len(), 2);
}

#[test]
fn select_distinct_streams_without_order_by() {
    let db = db_with_readings();
    // No pipeline breaker: the deduplication runs inside the lazy cursor,
    // in first-occurrence order.
    let rows: Vec<Vec<Value>> = db
        .query_rows("SELECT DISTINCT site FROM r", &[])
        .unwrap()
        .collect::<pgfmu_sqlmini::Result<_>>()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Text("a".into()), "first occurrence wins");
    // LIMIT counts distinct rows, not scanned rows.
    let q = db.execute("SELECT DISTINCT site FROM r LIMIT 1").unwrap();
    assert_eq!(q.rows.len(), 1);
}

#[test]
fn select_distinct_groups_nulls_together() {
    let db = Database::new();
    db.execute("CREATE TABLE t (v int)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (NULL), (NULL), (1)")
        .unwrap();
    let q = db.execute("SELECT DISTINCT v FROM t ORDER BY v").unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[1][0], Value::Null, "NULLs sort last");
}

#[test]
fn select_distinct_order_by_must_be_in_select_list() {
    let db = db_with_readings();
    let err = db
        .execute("SELECT DISTINCT site FROM r ORDER BY day")
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "for SELECT DISTINCT, ORDER BY expressions must appear in select list"
    );
    // The same expression (not just the same name) is fine.
    let q = db
        .execute("SELECT DISTINCT day * 10 AS decade FROM r ORDER BY decade DESC")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(20));
}

#[test]
fn select_distinct_composes_with_grouping() {
    let db = db_with_readings();
    // Two sites share sum(v) after rounding to one bucket each; DISTINCT
    // applies to the grouped output rows.
    let q = db
        .execute("SELECT DISTINCT count(*) FROM r GROUP BY site ORDER BY count(*)")
        .unwrap();
    assert_eq!(q.rows.len(), 2, "groups of 3 and 2 rows");
    let q = db
        .execute("SELECT DISTINCT 1 FROM r GROUP BY site")
        .unwrap();
    assert_eq!(q.rows.len(), 1, "both groups project the same row");
}

// --- streaming INSERT … SELECT ---------------------------------------------

#[test]
fn insert_select_snapshots_its_source() {
    let db = Database::new();
    db.execute("CREATE TABLE t (v int)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // The streamed source snapshots the scan: self-insertion doubles the
    // table instead of looping over its own output.
    let q = db.execute("INSERT INTO t SELECT v + 10 FROM t").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(2));
    let all: Vec<i64> = db.query_as("SELECT v FROM t ORDER BY v", &[]).unwrap();
    assert_eq!(all, vec![1, 2, 11, 12]);
}

#[test]
fn insert_select_with_column_list_streams_and_fills_nulls() {
    let db = Database::new();
    db.execute("CREATE TABLE src (a int, b text)").unwrap();
    db.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db.execute("CREATE TABLE dst (a int, b text, c float)")
        .unwrap();
    db.execute("INSERT INTO dst (b, a) SELECT b, a FROM src")
        .unwrap();
    let rows: Vec<(i64, String, Option<f64>)> =
        db.query_as("SELECT * FROM dst ORDER BY a", &[]).unwrap();
    assert_eq!(rows[0], (1, "x".into(), None));
    assert_eq!(rows[1], (2, "y".into(), None));
}

// --- quoted-string escaping ------------------------------------------------

#[test]
fn doubled_quote_escapes_in_literals_round_trip_through_storage() {
    let db = Database::new();
    db.execute("CREATE TABLE notes (body text)").unwrap();
    db.execute("INSERT INTO notes VALUES ('O''Brien''s model')")
        .unwrap();
    let q = db.execute("SELECT body FROM notes").unwrap();
    assert_eq!(q.rows[0][0], Value::Text("O'Brien's model".into()));
    // The stored value (with a real quote) is reachable via an escaped
    // comparison literal, so re-generated SQL can round-trip it.
    let q = db
        .execute("SELECT count(*) FROM notes WHERE body = 'O''Brien''s model'")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(1));
}

#[test]
fn escaped_quotes_survive_function_arguments() {
    let db = Database::new();
    db.register_scalar("observed_arg", |_db, args| Ok(args[0].clone()));
    let q = db.execute("SELECT observed_arg('it''s; quoted')").unwrap();
    assert_eq!(q.rows[0][0], Value::Text("it's; quoted".into()));
}

#[test]
fn unterminated_string_is_an_error_not_a_panic() {
    let db = Database::new();
    assert!(db.execute("SELECT 'dangling").is_err());
    // A trailing escape (`''`) keeps the literal open — still an error.
    assert!(db.execute("SELECT 'dangling''").is_err());
}

// --- LATERAL-style set-returning functions in FROM -------------------------

#[test]
fn srf_in_from_expands_to_rows() {
    let db = Database::new();
    let q = db
        .execute("SELECT * FROM generate_series(1, 4) AS g")
        .unwrap();
    let got: Vec<i64> = q.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![1, 2, 3, 4]);
}

#[test]
fn srf_arguments_reference_columns_to_their_left() {
    let db = db_with_measurements();
    // The paper's multi-instance pattern: a function in FROM whose
    // arguments come from the preceding table item (implicit LATERAL).
    let q = db
        .execute("SELECT id, s FROM m, LATERAL generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    let got: Vec<(i64, i64)> = q
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)]);
}

#[test]
fn lateral_keyword_is_optional() {
    let db = db_with_measurements();
    let with = db
        .execute("SELECT id, s FROM m, LATERAL generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    let without = db
        .execute("SELECT id, s FROM m, generate_series(1, id) AS s ORDER BY id, s")
        .unwrap();
    assert_eq!(with.rows, without.rows);
}

#[test]
fn registered_srf_can_reenter_the_database() {
    // fmu_parest-style re-entrancy: the SRF body runs its own query
    // against the same database while the outer query is executing.
    let db = db_with_measurements();
    db.register_table_fn("values_above", |db, args| {
        let threshold = args[0].as_f64()?;
        let inner = db.execute(&format!("SELECT v FROM m WHERE v > {threshold}"))?;
        let mut out = QueryResult::new(vec!["v".into()]);
        out.rows = inner.rows;
        Ok(out)
    });
    let q = db
        .execute("SELECT v FROM values_above(15.0) AS v ORDER BY v")
        .unwrap();
    let got: Vec<f64> = q.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(got, vec![20.0, 30.0]);
}

#[test]
fn multi_column_srf_keeps_its_own_column_names() {
    let db = Database::new();
    db.register_table_fn("pair_rows", |_db, _args| {
        let mut out = QueryResult::new(vec!["a".into(), "b".into()]);
        out.rows.push(vec![Value::Int(1), Value::Int(2)]);
        out.rows.push(vec![Value::Int(3), Value::Int(4)]);
        Ok(out)
    });
    let q = db
        .execute("SELECT a, b FROM pair_rows() AS p ORDER BY a")
        .unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[1], vec![Value::Int(3), Value::Int(4)]);
}
