//! Property tests for the SQL engine: totality of the front-end, codec
//! round-trips and executor invariants.

use proptest::prelude::*;

use pgfmu_sqlmini::value::{civil_from_days, days_from_civil};
use pgfmu_sqlmini::{format_timestamp, parse_timestamp, Database, Value};

/// Any storable SQL value, biased toward the quoting hazards (quotes,
/// doubled quotes, SQL-ish punctuation) that literal interpolation has to
/// escape and binds must pass through untouched.
fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        (-1_000_000_000i64..1_000_000_000).prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-zA-Z0-9 ',;%_()$=<>|.]{0,30}".prop_map(Value::Text),
        Just(Value::Text("it''s '' quoted".into())),
        (-4_000_000_000i64..8_000_000_000).prop_map(Value::Timestamp),
    ]
    .boxed()
}

/// Render a value as an escaped SQL literal — the interpolation path the
/// bind API replaces.
fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Timestamp(t) => format!("timestamp '{}'", format_timestamp(*t)),
        Value::Interval(s) => format!("interval '{s} seconds'"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lexer and parser never panic on arbitrary input.
    #[test]
    fn front_end_is_total(s in ".{0,200}") {
        let _ = pgfmu_sqlmini::parser::parse(&s);
    }

    /// Parser never panics on SQL-ish token soup.
    #[test]
    fn parser_total_on_sqlish_soup(
        s in "(select|from|where|insert|update|t|x|'a'|1|2\\.5|\\(|\\)|,|\\*|=|<|>|\\|\\||::| )+",
    ) {
        let _ = pgfmu_sqlmini::parser::parse(&s);
    }

    /// Civil-date conversion round-trips across a wide range.
    #[test]
    fn civil_days_round_trip(z in -200_000i64..200_000) {
        let (y, m, d) = civil_from_days(z);
        prop_assert_eq!(days_from_civil(y, m, d), z);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// Timestamp format → parse is the identity on whole seconds.
    #[test]
    fn timestamp_round_trip(secs in -4_000_000_000i64..8_000_000_000) {
        let text = format_timestamp(secs);
        prop_assert_eq!(parse_timestamp(&text).unwrap(), secs);
    }

    /// INSERT then SELECT returns exactly what was stored (floats).
    #[test]
    fn insert_select_round_trip(values in proptest::collection::vec(-1e9f64..1e9, 1..40)) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v float)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v:?})")).unwrap();
        }
        let q = db.execute("SELECT v FROM t").unwrap();
        let got: Vec<f64> = q.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        prop_assert_eq!(got, values);
    }

    /// ORDER BY produces a non-decreasing sequence; LIMIT caps rows.
    #[test]
    fn order_by_sorts_and_limit_caps(
        values in proptest::collection::vec(-1e6f64..1e6, 1..50),
        limit in 1u64..20,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v float)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v:?})")).unwrap();
        }
        let q = db
            .execute(&format!("SELECT v FROM t ORDER BY v LIMIT {limit}"))
            .unwrap();
        prop_assert!(q.len() <= limit as usize);
        let got: Vec<f64> = q.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Aggregates agree with direct computation.
    #[test]
    fn aggregates_match_direct_computation(
        values in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v float)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v:?})")).unwrap();
        }
        let q = db.execute("SELECT count(*), sum(v), min(v), max(v) FROM t").unwrap();
        prop_assert_eq!(q.rows[0][0].clone(), Value::Int(values.len() as i64));
        let sum: f64 = values.iter().sum();
        prop_assert!((q.rows[0][1].as_f64().unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(q.rows[0][2].as_f64().unwrap(), min);
        prop_assert_eq!(q.rows[0][3].as_f64().unwrap(), max);
    }

    /// Grouped aggregation is a partition of the whole-table aggregate:
    /// the per-key sums and counts add up to the ungrouped totals, and
    /// each group's sum matches a WHERE-filtered whole-table sum.
    #[test]
    fn grouped_sums_partition_whole_table_sums(
        rows in proptest::collection::vec((0i64..5, -1e6f64..1e6), 1..60),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (k int, v float)").unwrap();
        let insert = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
        for (k, v) in &rows {
            insert.query(&[Value::Int(*k), Value::Float(*v)]).unwrap();
        }
        let total: f64 = rows.iter().map(|(_, v)| v).sum();
        let grouped = db
            .execute("SELECT k, count(*), sum(v) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let mut group_total = 0.0;
        let mut group_count = 0i64;
        for r in &grouped.rows {
            let k = r[0].as_i64().unwrap();
            group_count += r[1].as_i64().unwrap();
            let sum = r[2].as_f64().unwrap();
            group_total += sum;
            // Each group's sum equals the WHERE-filtered whole-table sum.
            let filtered = db
                .query("SELECT sum(v) FROM t WHERE k = $1", &[Value::Int(k)])
                .unwrap();
            let direct = filtered.rows[0][0].as_f64().unwrap();
            prop_assert!((sum - direct).abs() < 1e-6 * (1.0 + direct.abs()));
        }
        prop_assert_eq!(group_count, rows.len() as i64);
        prop_assert!((group_total - total).abs() < 1e-6 * (1.0 + total.abs()));
        // HAVING true keeps every group; HAVING false drops them all.
        let all = db
            .execute("SELECT k FROM t GROUP BY k HAVING count(*) > 0")
            .unwrap();
        prop_assert_eq!(all.rows.len(), grouped.rows.len());
        let none = db
            .execute("SELECT k FROM t GROUP BY k HAVING count(*) < 0")
            .unwrap();
        prop_assert_eq!(none.rows.len(), 0);
    }

    /// WHERE partitioning: matching + non-matching = all rows.
    #[test]
    fn where_partitions_rows(
        values in proptest::collection::vec(-100i64..100, 1..60),
        threshold in -100i64..100,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let above = db
            .execute(&format!("SELECT count(*) FROM t WHERE v > {threshold}"))
            .unwrap();
        let below = db
            .execute(&format!("SELECT count(*) FROM t WHERE v <= {threshold}"))
            .unwrap();
        let a = above.rows[0][0].as_i64().unwrap();
        let b = below.rows[0][0].as_i64().unwrap();
        prop_assert_eq!(a + b, values.len() as i64);
    }

    /// For random SELECT shapes — WHERE, GROUP BY, HAVING, ORDER BY,
    /// DISTINCT, LIMIT in every combination — the streamed `Rows` cursor,
    /// the materialized `QueryResult`, and an uncached execution (which
    /// compiles a fresh physical plan) agree row for row. This pins the
    /// lazy, eager and plan-cached paths of the executor to each other.
    #[test]
    fn streamed_equals_materialized_for_random_selects(
        rows in proptest::collection::vec((0i64..4, -100i64..100), 0..40),
        where_threshold in (-101i64..100).prop_map(|t| (t >= -100).then_some(t)),
        group in (0i64..2).prop_map(|b| b == 1),
        having in (0i64..2).prop_map(|b| b == 1),
        order in (0i64..2).prop_map(|b| b == 1),
        distinct in (0i64..2).prop_map(|b| b == 1),
        limit in (0u64..10).prop_map(|l| (l > 0).then_some(l)),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (k int, v int)").unwrap();
        let insert = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
        for (k, v) in &rows {
            insert.query(&[Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let mut sql = String::from("SELECT ");
        if distinct {
            sql.push_str("DISTINCT ");
        }
        if group {
            sql.push_str("k, count(*) AS c, sum(v) AS s FROM t");
        } else {
            sql.push_str("k, v FROM t");
        }
        if let Some(th) = where_threshold {
            sql.push_str(&format!(" WHERE v > {th}"));
        }
        if group {
            sql.push_str(" GROUP BY k");
            if having {
                sql.push_str(" HAVING count(*) > 1");
            }
        }
        if order {
            sql.push_str(" ORDER BY k");
        }
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }

        let materialized = db.execute(&sql).unwrap();
        let streamed: Vec<Vec<Value>> = db
            .query_rows(&sql, &[])
            .unwrap()
            .collect::<pgfmu_sqlmini::Result<_>>()
            .unwrap();
        let uncached = db.execute_uncached(&sql).unwrap();
        prop_assert_eq!(&materialized.rows, &streamed);
        prop_assert_eq!(&materialized.rows, &uncached.rows);
        // A second cached execution reuses the shared plan and agrees too.
        let (built, _) = db.plan_stats();
        let again = db.execute(&sql).unwrap();
        prop_assert_eq!(&materialized.rows, &again.rows);
        prop_assert_eq!(db.plan_stats().0, built, "no re-planning on re-execution");
        if let Some(l) = limit {
            prop_assert!(materialized.rows.len() <= l as usize);
        }
    }

    /// The zero-copy scan (under the table read guard) and the snapshot
    /// fallback produce identical results for every SELECT shape —
    /// WHERE, ORDER BY (asc/desc), DISTINCT, LIMIT in all combinations.
    /// The fallback is forced by routing the predicate through a
    /// re-entrant UDF (`opaque`), which the planner must classify as
    /// unsafe to run under a guard; the scan-strategy counters verify
    /// each statement actually took the intended path.
    #[test]
    fn zero_copy_and_snapshot_scans_agree(
        rows in proptest::collection::vec((0i64..5, -100i64..100), 0..50),
        threshold in -101i64..101,
        order in (0i64..3).prop_map(|o| match o {
            0 => "",
            1 => " ORDER BY k, v",
            _ => " ORDER BY v DESC, k",
        }),
        distinct in (0i64..2).prop_map(|b| b == 1),
        limit in (0u64..8).prop_map(|l| (l > 0).then_some(l)),
    ) {
        let db = Database::new();
        // A raw-registered scalar: the planner cannot prove it stays out
        // of the database, so any statement using it must snapshot.
        db.register_scalar("opaque", |_db, args| Ok(args[0].clone()));
        db.execute("CREATE TABLE t (k int, v int)").unwrap();
        let insert = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
        for (k, v) in &rows {
            insert.query(&[Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let tail = format!(
            "{order}{}",
            limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default()
        );
        let head = if distinct { "SELECT DISTINCT" } else { "SELECT" };
        // DISTINCT + ORDER BY requires the sort keys in the select list —
        // `k, v` always are.
        let zero_sql = format!("{head} k, v FROM t WHERE v > {threshold}{tail}");
        let snap_sql = format!("{head} k, v FROM t WHERE opaque(v) > {threshold}{tail}");
        let (_, z0, f0) = db.scan_stats();
        let zero = db.execute(&zero_sql).unwrap();
        let (_, z1, f1) = db.scan_stats();
        prop_assert_eq!(z1, z0 + 1, "safe scan must run zero-copy");
        let snap = db.execute(&snap_sql).unwrap();
        let (_, z2, f2) = db.scan_stats();
        prop_assert_eq!(f2, f1 + 1, "re-entrant predicate must snapshot");
        prop_assert_eq!(z2, z1, "re-entrant predicate must not run zero-copy");
        prop_assert_eq!(&zero.rows, &snap.rows);
        prop_assert_eq!(f1, f0, "safe scan must not snapshot");
        // The streamed cursor agrees with both.
        let streamed: Vec<Vec<Value>> = db
            .query_rows(&zero_sql, &[])
            .unwrap()
            .collect::<pgfmu_sqlmini::Result<_>>()
            .unwrap();
        prop_assert_eq!(&zero.rows, &streamed);
    }

    /// In-place UPDATE / DELETE (predicates evaluated under one write
    /// guard, matching rows touched by index) behave exactly like the
    /// snapshot-rebuild fallback that re-entrant expressions still take:
    /// same rows afterwards, same affected-row counts.
    #[test]
    fn in_place_dml_matches_snapshot_dml(
        rows in proptest::collection::vec((0i64..6, -50i64..50), 0..40),
        threshold in -51i64..51,
        delta in 1i64..5,
    ) {
        let db = Database::new();
        db.register_scalar("opaque", |_db, args| Ok(args[0].clone()));
        for t in ["a", "b"] {
            db.execute(&format!("CREATE TABLE {t} (k int, v int)")).unwrap();
            let insert = db.prepare(&format!("INSERT INTO {t} VALUES ($1, $2)")).unwrap();
            for (k, v) in &rows {
                insert.query(&[Value::Int(*k), Value::Int(*v)]).unwrap();
            }
        }
        let (_, z0, f0) = db.scan_stats();
        let fast = db
            .execute(&format!("UPDATE a SET v = v + {delta} WHERE k > {threshold}"))
            .unwrap();
        let (_, z1, _) = db.scan_stats();
        prop_assert_eq!(z1, z0 + 1, "safe UPDATE runs in place");
        let slow = db
            .execute(&format!(
                "UPDATE b SET v = opaque(v) + {delta} WHERE k > {threshold}"
            ))
            .unwrap();
        let (_, z2, f2) = db.scan_stats();
        prop_assert_eq!(z2, z1, "re-entrant UPDATE snapshots");
        prop_assert!(f2 > f0);
        prop_assert_eq!(&fast.rows, &slow.rows, "same affected-row count");
        // Physical order may differ: the auto-commit fast path
        // overwrites rows in place, the re-entrant fallback ends the
        // old version and appends the new one. SQL promises a multiset.
        let key = |r: &Vec<Value>| {
            r.iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    other => panic!("unexpected value {other:?}"),
                })
                .collect::<Vec<i64>>()
        };
        let sorted = |mut rows: Vec<Vec<Value>>| {
            rows.sort_by_key(key);
            rows
        };
        let qa = db.execute("SELECT k, v FROM a").unwrap();
        let qb = db.execute("SELECT k, v FROM b").unwrap();
        prop_assert_eq!(
            sorted(qa.rows),
            sorted(qb.rows),
            "same table contents after UPDATE"
        );

        let fast = db
            .execute(&format!("DELETE FROM a WHERE v > {threshold}"))
            .unwrap();
        let slow = db
            .execute(&format!("DELETE FROM b WHERE opaque(v) > {threshold}"))
            .unwrap();
        prop_assert_eq!(&fast.rows, &slow.rows, "same deleted-row count");
        let qa = db.execute("SELECT k, v FROM a").unwrap();
        let qb = db.execute("SELECT k, v FROM b").unwrap();
        prop_assert_eq!(
            sorted(qa.rows),
            sorted(qb.rows),
            "same table contents after DELETE"
        );
    }

    /// Serial workloads cannot tell MVCC from single-version storage: a
    /// random INSERT/UPDATE/DELETE sequence applied to the engine and to
    /// a plain in-memory model yields the same multiset of rows after
    /// every statement.
    #[test]
    fn serial_dml_matches_single_version_model(
        ops in proptest::collection::vec((0u8..3, -20i64..20, -20i64..20), 0..30),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        let mut model: Vec<i64> = Vec::new();
        for (op, a, b) in ops {
            match op {
                0 => {
                    db.execute(&format!("INSERT INTO t VALUES ({a})")).unwrap();
                    model.push(a);
                }
                1 => {
                    db.execute(&format!("UPDATE t SET v = {b} WHERE v < {a}")).unwrap();
                    for v in model.iter_mut() {
                        if *v < a {
                            *v = b;
                        }
                    }
                }
                _ => {
                    db.execute(&format!("DELETE FROM t WHERE v > {a}")).unwrap();
                    model.retain(|v| *v <= a);
                }
            }
            let mut got: Vec<i64> = db
                .execute("SELECT v FROM t")
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            got.sort_unstable();
            let mut want = model.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// A streaming reader opened before a batch of writes never observes
    /// them: the cursor's snapshot is immutable no matter how the table
    /// changes while it is open — whether the writes auto-commit one by
    /// one or land atomically through BEGIN … COMMIT.
    #[test]
    fn open_cursors_never_see_later_writes(
        initial in proptest::collection::vec(-100i64..100, 1..20),
        writes in proptest::collection::vec((0u8..3, -100i64..100), 1..10),
        in_txn in (0i64..2).prop_map(|b| b == 1),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        for v in &initial {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let mut rows = db.query_rows("SELECT v FROM t", &[]).unwrap();
        let first = rows.next().unwrap().unwrap();
        prop_assert_eq!(&first[0], &Value::Int(initial[0]));
        if in_txn {
            db.execute("BEGIN").unwrap();
        }
        for (op, x) in &writes {
            match op {
                0 => db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap(),
                1 => db.execute(&format!("UPDATE t SET v = v + 1 WHERE v < {x}")).unwrap(),
                _ => db.execute(&format!("DELETE FROM t WHERE v > {x}")).unwrap(),
            };
        }
        if in_txn {
            db.execute("COMMIT").unwrap();
        }
        let rest: Vec<i64> = rows.map(|r| r.unwrap()[0].as_i64().unwrap()).collect();
        let mut seen = vec![initial[0]];
        seen.extend(rest);
        prop_assert_eq!(seen, initial, "the cursor reads its snapshot, not the writes");
    }

    /// ROLLBACK erases every trace of a transaction's random DML: the
    /// table reads back exactly — contents and order — as before BEGIN.
    #[test]
    fn rolled_back_transactions_are_invisible(
        initial in proptest::collection::vec(-100i64..100, 0..20),
        ops in proptest::collection::vec((0u8..3, -100i64..100), 1..12),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        for v in &initial {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let before = db.execute("SELECT v FROM t").unwrap();
        db.execute("BEGIN").unwrap();
        for (op, x) in &ops {
            match op {
                0 => db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap(),
                1 => db.execute(&format!("UPDATE t SET v = v + 1 WHERE v < {x}")).unwrap(),
                _ => db.execute(&format!("DELETE FROM t WHERE v > {x}")).unwrap(),
            };
        }
        db.execute("ROLLBACK").unwrap();
        let after = db.execute("SELECT v FROM t").unwrap();
        prop_assert_eq!(&before.rows, &after.rows);
    }

    /// A `$1` bind stores exactly the same value as the equivalent escaped
    /// literal — binds and interpolation are interchangeable (modulo the
    /// quoting hazards binds avoid entirely).
    #[test]
    fn bind_and_escaped_literal_round_trip_identically(v in arb_value()) {
        let db = Database::new();
        db.execute("CREATE TABLE t (tag int, v variant)").unwrap();
        db.execute(&format!("INSERT INTO t VALUES (0, {})", literal(&v)))
            .unwrap();
        db.query("INSERT INTO t VALUES (1, $1)", std::slice::from_ref(&v))
            .unwrap();
        let q = db.execute("SELECT v FROM t ORDER BY tag").unwrap();
        prop_assert_eq!(&q.rows[0][0], &q.rows[1][0]);
        prop_assert_eq!(&q.rows[1][0], &v);
        // The bound value also round-trips through a WHERE comparison.
        if !v.is_null() {
            let hits = db
                .query("SELECT count(*) FROM t WHERE v = $1", std::slice::from_ref(&v))
                .unwrap();
            prop_assert_eq!(hits.rows[0][0].clone(), Value::Int(2));
        }
    }
}

// ---------------------------------------------------------------------------
// Error paths of the prepare/bind surface.
// ---------------------------------------------------------------------------

#[test]
fn out_of_range_and_malformed_parameters_error() {
    let db = Database::new();
    // $0 is rejected at parse time (PostgreSQL numbers parameters from 1).
    let err = db.prepare("SELECT $0").unwrap_err().to_string();
    assert!(err.contains("$0"), "{err}");
    // A bare `$` is a lex error.
    assert!(db.prepare("SELECT $").is_err());
    // Highest referenced parameter determines the requirement; supplying
    // fewer binds than $n requires is an execution error naming the counts.
    let stmt = db.prepare("SELECT $2").unwrap();
    assert_eq!(stmt.n_params(), 2);
    let err = stmt.query(&[Value::Int(1)]).unwrap_err().to_string();
    assert!(
        err.contains("supplies 1 parameters") && err.contains("requires 2"),
        "{err}"
    );
    // Extra binds are rejected too.
    let stmt = db.prepare("SELECT $1").unwrap();
    let err = stmt
        .query(&[Value::Int(1), Value::Int(2)])
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("supplies 2 parameters") && err.contains("requires 1"),
        "{err}"
    );
    // Preparing invalid SQL fails up front, before any execution.
    assert!(db.prepare("SELECT FROM WHERE").is_err());
}

// ---------------------------------------------------------------------------
// Access-path equivalence: the planner's choice must never change results.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index-backed scans return byte-identical rows to sequential scans
    /// over random data and predicates — while a concurrent MVCC writer
    /// churns out-of-range rows, forcing live index maintenance and
    /// version-position renumbering under the probes. The noise rows can
    /// never match the predicates, so both plans must agree exactly even
    /// though each statement runs under its own snapshot.
    #[test]
    fn index_scan_matches_seq_scan_under_concurrent_writes(
        keys in proptest::collection::vec(-50i64..50, 1..80),
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (k int, v int)").unwrap();
        let ins = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
        for (i, k) in keys.iter().enumerate() {
            ins.query(&[Value::Int(*k), Value::Int(i as i64)]).unwrap();
        }
        db.execute("CREATE INDEX t_k ON t (k)").unwrap();
        db.execute("ANALYZE t").unwrap();
        let hi = lo + width;
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let db = &db;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    db.execute("INSERT INTO t VALUES (1000, -1)").unwrap();
                    db.execute("DELETE FROM t WHERE k = 1000").unwrap();
                }
            });
            for pred in [
                format!("k = {lo}"),
                format!("k > {lo} AND k <= {hi}"),
                format!("k <= {lo}"),
            ] {
                let sql = format!("SELECT k, v FROM t WHERE {pred} ORDER BY v");
                db.set_index_access_enabled(true);
                let with_index = db.execute(&sql).unwrap();
                db.set_index_access_enabled(false);
                let seq = db.execute(&sql).unwrap();
                prop_assert_eq!(with_index.rows, seq.rows, "{sql}");
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}

// ---------------------------------------------------------------------------
// Vectorized vs scalar equivalence
// ---------------------------------------------------------------------------

/// An optional grouping key, biased toward NULLs and heavy ties.
fn arb_key() -> BoxedStrategy<Option<i64>> {
    prop_oneof![Just(None), (-3i64..3).prop_map(Some)].boxed()
}

/// An optional float biased toward the vectorization hazards: NULLs,
/// the `-0.0` / `0.0` canonicalization pair, negatives (NaN sort keys
/// through `sqrt`), and heavy ties.
fn arb_fval() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        Just(Some(-0.0)),
        Just(Some(0.0)),
        (-3i64..3).prop_map(|i| Some(i as f64 * 0.5)),
        (-1e6f64..1e6).prop_map(Some),
    ]
    .boxed()
}

/// Create `t (k int, v float)` and load the generated rows.
fn load_kv(db: &Database, rows: &[(Option<i64>, Option<f64>)]) {
    db.execute("CREATE TABLE t (k int, v float)").unwrap();
    let ins = db.prepare("INSERT INTO t VALUES ($1, $2)").unwrap();
    for (k, v) in rows {
        ins.query(&[
            k.map(Value::Int).unwrap_or(Value::Null),
            v.map(Value::Float).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
}

/// Run `sql` with the vectorized toggle on, then off, and return both
/// outcomes (rows, or the error message) for comparison.
#[allow(clippy::type_complexity)]
fn sweep_vectorized(
    db: &Database,
    sql: &str,
) -> (
    Result<Vec<Vec<Value>>, String>,
    Result<Vec<Vec<Value>>, String>,
) {
    db.set_vectorized_enabled(true);
    let vectorized = db.execute(sql).map(|q| q.rows).map_err(|e| e.to_string());
    db.set_vectorized_enabled(false);
    let scalar = db.execute(sql).map(|q| q.rows).map_err(|e| e.to_string());
    db.set_vectorized_enabled(true);
    (vectorized, scalar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grouped aggregation on the columnar batch path is byte-identical
    /// to the scalar sweep: NULL keys group, `-0.0`/`0.0` share a
    /// bucket, groups come out in first-seen order, and every aggregate
    /// kind folds to the same values.
    #[test]
    fn vectorized_grouped_aggregates_match_scalar(
        rows in proptest::collection::vec((arb_key(), arb_fval()), 0..60),
        threshold in -5i64..5,
    ) {
        let db = Database::new();
        load_kv(&db, &rows);
        for sql in [
            "SELECT k, count(*), count(v), sum(v), avg(v), min(v), max(v) \
             FROM t GROUP BY k"
                .to_string(),
            // Float grouping keys: the -0.0 canonicalization bucket.
            "SELECT v, count(*) FROM t GROUP BY v".to_string(),
            // Expression keys through an intrinsic, ordered emission.
            "SELECT abs(k), sum(v) FROM t GROUP BY abs(k) ORDER BY 1".to_string(),
            // Filtered + HAVING (HAVING runs in scalar emission on both paths).
            format!(
                "SELECT k, sum(v) FROM t WHERE k > {threshold} \
                 GROUP BY k HAVING count(*) >= 2"
            ),
            // Ungrouped aggregates: one group even over empty input.
            "SELECT count(DISTINCT k), min(v), count(*) FROM t".to_string(),
        ] {
            let (vectorized, scalar) = sweep_vectorized(&db, &sql);
            prop_assert_eq!(&vectorized, &scalar, "statement: {}", sql);
        }
        // The sweeps above really exercised the batch path.
        let (filled, ops, _) = db.vectorized_stats();
        prop_assert!(filled >= 1, "no batch was filled");
        prop_assert!(ops >= 1, "no vectorized operator ran");
    }

    /// Ordered / LIMIT SELECTs on the batch path (single-key index sort
    /// and the bounded top-K heap) match the scalar sort exactly —
    /// including tie order, NULL placement, NaN sort keys (via `sqrt`
    /// of negatives), and the DISTINCT shapes that must fall back.
    #[test]
    fn vectorized_ordered_limit_matches_scalar(
        rows in proptest::collection::vec((arb_key(), arb_fval()), 0..60),
        limit in 0usize..70,
    ) {
        let db = Database::new();
        load_kv(&db, &rows);
        for sql in [
            format!("SELECT k, v FROM t ORDER BY v LIMIT {limit}"),
            format!("SELECT k, v FROM t ORDER BY v DESC LIMIT {limit}"),
            format!("SELECT v FROM t ORDER BY k LIMIT {limit}"),
            format!("SELECT k, v FROM t ORDER BY v + 0.5 DESC LIMIT {limit}"),
            format!("SELECT k, v FROM t ORDER BY sqrt(v) LIMIT {limit}"),
            format!("SELECT DISTINCT k FROM t ORDER BY k LIMIT {limit}"),
            "SELECT k, v FROM t ORDER BY v".to_string(),
        ] {
            let (vectorized, scalar) = sweep_vectorized(&db, &sql);
            prop_assert_eq!(&vectorized, &scalar, "statement: {}", sql);
        }
        let (filled, ops, _) = db.vectorized_stats();
        prop_assert!(filled >= 1, "no batch was filled");
        prop_assert!(ops >= 1, "no vectorized operator ran");
    }

    /// A re-entrant UDF anywhere in the scan program keeps the
    /// statement off the batch path entirely (it is not even a run-time
    /// fallback: plan classification already refuses it), and results
    /// still match with the toggle swept both ways.
    #[test]
    fn reentrant_udf_keeps_the_scalar_path(
        rows in proptest::collection::vec((arb_key(), arb_fval()), 0..40),
        threshold in -3i64..3,
    ) {
        let db = Database::new();
        load_kv(&db, &rows);
        db.register_scalar("opaque", |_db, args| Ok(args[0].clone()));
        for sql in [
            format!("SELECT k, count(*) FROM t WHERE opaque(k) > {threshold} GROUP BY k"),
            format!("SELECT k, v FROM t WHERE opaque(k) > {threshold} ORDER BY v LIMIT 5"),
        ] {
            let (vectorized, scalar) = sweep_vectorized(&db, &sql);
            prop_assert_eq!(&vectorized, &scalar, "statement: {}", sql);
        }
        let (filled, ops, fallbacks) = db.vectorized_stats();
        prop_assert_eq!((filled, ops, fallbacks), (0, 0, 0));
    }
}
