//! Sharded version storage: multi-writer stress over one table, cursor
//! pinning at shard granularity, and the S=1-vs-S>1 equivalence
//! contract — a single-threaded session must observe *byte-identical*
//! results (including row order) whatever the shard count, because
//! home-shard routing keeps one thread's appends in one arena. Run in
//! release mode by CI's concurrency step and swept by the
//! `PGFMU_TABLE_SHARDS` matrix.

use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;

use pgfmu_sqlmini::{params, Database, Value};

/// Disjoint-range writers (auto-commit, transactional, and rolled-back
/// rounds) churn one table from four threads while streaming readers and
/// a vacuum loop run against it. Snapshot isolation: every streamed row
/// must satisfy the writers' `v = 2k` invariant, and the final multiset
/// of keys is exactly the committed inserts.
#[test]
fn disjoint_writers_with_readers_and_vacuum() {
    const WRITERS: usize = 4;
    const PER_WRITER: i64 = 300;
    let db = Database::with_table_shards(8);
    db.execute("CREATE TABLE u (k int, v int)").unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    let ins = db.prepare("INSERT INTO u VALUES ($1, $2)").unwrap();
                    let base = w as i64 * 10_000;
                    for i in 0..PER_WRITER {
                        let k = base + i;
                        match i % 10 {
                            // Transactional rounds ride group commit.
                            3 => {
                                db.execute("BEGIN").unwrap();
                                ins.query(params![k, 2 * k]).unwrap();
                                db.execute("COMMIT").unwrap();
                            }
                            // Rolled-back rounds must leave no trace:
                            // re-insert the key afterwards so the final
                            // key set stays dense.
                            7 => {
                                db.execute("BEGIN").unwrap();
                                ins.query(params![k, 2 * k]).unwrap();
                                db.execute("ROLLBACK").unwrap();
                                ins.query(params![k, 2 * k]).unwrap();
                            }
                            _ => {
                                ins.query(params![k, 2 * k]).unwrap();
                            }
                        }
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut n = 0i64;
                    for r in db.query_rows("SELECT k, v FROM u", &[]).unwrap() {
                        let r = r.unwrap();
                        let (k, v) = (r[0].as_i64().unwrap(), r[1].as_i64().unwrap());
                        assert_eq!(v, 2 * k, "torn row: k={k} v={v}");
                        n += 1;
                    }
                    assert!(n <= WRITERS as i64 * PER_WRITER);
                }
            });
        }
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.vacuum();
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let q = db
        .execute("SELECT count(*), sum(k), sum(v) FROM u")
        .unwrap();
    let expect_n = WRITERS as i64 * PER_WRITER;
    let expect_k: i64 = (0..WRITERS as i64)
        .flat_map(|w| (0..PER_WRITER).map(move |i| w * 10_000 + i))
        .sum();
    assert_eq!(q.rows[0][0], Value::Int(expect_n));
    assert_eq!(q.rows[0][1], Value::Float(expect_k as f64));
    assert_eq!(q.rows[0][2], Value::Float(2.0 * expect_k as f64));
    let (shards, _, group_commits, _) = db.shard_stats();
    assert_eq!(shards, 8);
    assert!(
        group_commits >= 1,
        "transactional rounds at S>1 must go through group commit"
    );
}

/// A half-open streaming cursor pins version storage at shard
/// granularity. Whichever shards vacuum reclaims mid-stream (drained
/// ones may compact; the one being drained may not), the cursor's
/// snapshot must stream back complete and untorn even though a
/// transactional DELETE killed every row under it.
#[test]
fn mid_stream_vacuum_never_disturbs_the_cursor_snapshot() {
    const N: i64 = 512;
    let db = Database::with_table_shards(8);
    db.execute("CREATE TABLE t (k int)").unwrap();
    let ins = db.prepare("INSERT INTO t VALUES ($1)").unwrap();
    // Two writer threads so the rows straddle more than one home shard
    // (each thread appends to its own arena).
    std::thread::scope(|s| {
        for w in 0..2 {
            let ins = &ins;
            s.spawn(move || {
                for i in 0..N / 2 {
                    ins.query(params![w * (N / 2) + i]).unwrap();
                }
            });
        }
    });
    let mut rows = db.query_rows("SELECT k FROM t", &[]).unwrap();
    let mut sum = 0i64;
    // Consume a bit, then kill every row the cursor still has to read.
    // The cursor's snapshot predates the DELETE, and streaming cursors
    // pin shards, not the GC watermark — so the pin is the only thing
    // keeping vacuum away from versions the stream still needs.
    sum += rows.next().unwrap().unwrap()[0].as_i64().unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM t").unwrap();
    db.execute("COMMIT").unwrap();
    db.vacuum();
    for r in rows {
        sum += r.unwrap()[0].as_i64().unwrap();
    }
    assert_eq!(sum, (0..N).sum::<i64>(), "cursor lost or repeated rows");
    // With the cursor gone, the dead versions are fully reclaimable.
    db.vacuum();
    assert!(db.gc_stats() >= N as u64, "gc_stats {}", db.gc_stats());
    assert_eq!(
        db.execute("SELECT count(*) FROM t").unwrap().rows[0][0],
        Value::Int(0)
    );
}

/// One step of the equivalence script: the same statement is applied to
/// the S=1 and the S=8 database.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Update {
        mul: i64,
        lo: i64,
        hi: i64,
    },
    Delete {
        lo: i64,
        hi: i64,
    },
    /// BEGIN; a write per key; COMMIT or ROLLBACK.
    Txn {
        keys: Vec<i64>,
        commit: bool,
    },
}

fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        proptest::collection::vec(0i64..400, 1..8).prop_map(Op::Insert),
        (2i64..5, 0i64..400, 1i64..200).prop_map(|(mul, lo, w)| Op::Update {
            mul,
            lo,
            hi: lo + w,
        }),
        (0i64..400, 1i64..60).prop_map(|(lo, w)| Op::Delete { lo, hi: lo + w }),
        (proptest::collection::vec(0i64..400, 1..5), 0i64..2).prop_map(|(keys, commit)| Op::Txn {
            keys,
            commit: commit == 1,
        }),
    ]
    .boxed()
}

fn apply(db: &Database, ops: &[Op]) {
    let ins = db.prepare("INSERT INTO e VALUES ($1, $2)").unwrap();
    for op in ops {
        match op {
            Op::Insert(keys) => {
                for &k in keys {
                    ins.query(params![k, 10 * k]).unwrap();
                }
            }
            Op::Update { mul, lo, hi } => {
                db.query(
                    "UPDATE e SET v = v * $1 WHERE k >= $2 AND k < $3",
                    params![*mul, *lo, *hi],
                )
                .unwrap();
            }
            Op::Delete { lo, hi } => {
                db.query("DELETE FROM e WHERE k >= $1 AND k < $2", params![*lo, *hi])
                    .unwrap();
            }
            Op::Txn { keys, commit } => {
                db.execute("BEGIN").unwrap();
                for &k in keys {
                    ins.query(params![k, 10 * k]).unwrap();
                }
                db.execute(if *commit { "COMMIT" } else { "ROLLBACK" })
                    .unwrap();
            }
        }
    }
}

/// Everything a session can observe, in raw scan order: un-ORDERed
/// SELECT output (both materialized and streamed), an aggregate, and the
/// point-probe answers with the planner's index choice on and off.
fn observe(db: &Database) -> Vec<Vec<Value>> {
    let mut out = db.query("SELECT k, v FROM e", &[]).unwrap().rows;
    out.extend(
        db.query_rows("SELECT v, k FROM e", &[])
            .unwrap()
            .map(|r| r.unwrap()),
    );
    out.extend(
        db.query("SELECT count(*), sum(v) FROM e", &[])
            .unwrap()
            .rows,
    );
    db.execute("CREATE INDEX e_k ON e (k)").unwrap();
    for probe in [7i64, 100, 399] {
        let ix = db
            .query("SELECT v FROM e WHERE k = $1", params![probe])
            .unwrap()
            .rows;
        db.set_index_access_enabled(false);
        let seq = db
            .query("SELECT v FROM e WHERE k = $1", params![probe])
            .unwrap()
            .rows;
        db.set_index_access_enabled(true);
        assert_eq!(ix, seq, "index scan diverged from seq scan at k={probe}");
        out.extend(ix);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shard-count escape hatch is invisible to a single-threaded
    /// session: the same DML script produces byte-identical observations
    /// (including raw scan order) at S=1 and S=8, through rollbacks,
    /// index probes and a final vacuum.
    #[test]
    fn single_threaded_session_is_identical_at_any_shard_count(
        ops in proptest::collection::vec(arb_op(), 1..12),
    ) {
        let one = Database::with_table_shards(1);
        let eight = Database::with_table_shards(8);
        for db in [&one, &eight] {
            db.execute("CREATE TABLE e (k int, v int)").unwrap();
        }
        apply(&one, &ops);
        apply(&eight, &ops);
        prop_assert_eq!(observe(&one), observe(&eight));
        one.vacuum();
        eight.vacuum();
        prop_assert_eq!(
            one.query("SELECT k, v FROM e", &[]).unwrap().rows,
            eight.query("SELECT k, v FROM e", &[]).unwrap().rows,
            "post-vacuum scan order diverged"
        );
    }
}
