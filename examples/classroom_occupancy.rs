//! Combining pgFMU with in-DBMS machine learning (paper §8.2, "Combining
//! pgFMU and MADlib"):
//!
//! 1. an ARIMA model forecasts classroom occupancy from history;
//! 2. `fmu_simulate` consumes the predicted occupancy to forecast indoor
//!    temperatures (vs. a model that assumes an empty room);
//! 3. a logistic regression classifies the ventilation damper position,
//!    with and without pgFMU-simulated temperature in the feature vector.
//!
//! Run with: `cargo run --release --example classroom_occupancy`

use pgfmu::PgFmu;
use pgfmu_datagen::classroom::classroom_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PgFmu::new()?;
    let data = classroom_dataset(11);
    data.load_into(session.db(), "classroom")?;
    let split = (data.len() as f64 * 0.8) as usize;
    let split_ts = pgfmu_sqlmini::format_timestamp(data.timestamps[split]);
    println!(
        "classroom data: {} half-hourly samples, train/validate split at {split_ts}",
        data.len()
    );

    session.execute("SELECT fmu_create('Classroom', 'Room1')")?;

    // --- Occupancy forecasting with ARIMA (daily season = 48 samples). ----
    session.execute("CREATE TABLE occupants (time timestamp, value float)")?;
    session.execute(&format!(
        "INSERT INTO occupants SELECT ts, occ FROM classroom \
         WHERE ts < timestamp '{split_ts}'"
    ))?;
    // Weekly seasonality (336 half-hours) so weekends are forecast empty.
    session.execute(
        "SELECT arima_train('occupants', 'occupants_output', 'time', 'value', \
         '1,0,0,1,336')",
    )?;
    let horizon = data.len() - split;
    session.execute("CREATE TABLE occ_forecast (ts timestamp, occ float)")?;
    session.execute(&format!(
        "INSERT INTO occ_forecast \
         SELECT time, greatest(0.0, value) FROM arima_forecast('occupants_output', {horizon})"
    ))?;

    // --- Simulate the validation window two ways. ---------------------------
    // (a) without occupancy information (empty room assumption);
    session.execute(
        "CREATE TABLE inputs_no_occ (ts timestamp, solrad float, tout float, \
         occ float, dpos float, vpos float)",
    )?;
    session.execute(&format!(
        "INSERT INTO inputs_no_occ \
         SELECT ts, solrad, tout, 0.0, dpos, vpos FROM classroom \
         WHERE ts >= timestamp '{split_ts}'"
    ))?;
    // (b) with the ARIMA-predicted occupancy joined in.
    session.execute(
        "CREATE TABLE inputs_arima (ts timestamp, solrad float, tout float, \
         occ float, dpos float, vpos float)",
    )?;
    session.execute(
        "INSERT INTO inputs_arima \
         SELECT c.ts, c.solrad, c.tout, f.occ, c.dpos, c.vpos \
         FROM classroom c, occ_forecast f \
         WHERE c.ts = f.ts",
    )?;

    // Each forecast starts from a *warmed-up* state: simulating the
    // training window first leaves the (noise-free) state estimate at the
    // split in the catalogue, because fmu_simulate persists final states.
    let rmse_for = |inputs: &str| -> Result<f64, Box<dyn std::error::Error>> {
        session.execute("SELECT fmu_set_initial('Room1', 't', 21.0)")?;
        session.execute(&format!(
            "SELECT count(*) FROM fmu_simulate('Room1', \
             'SELECT * FROM classroom WHERE ts <= timestamp ''{split_ts}''')"
        ))?;
        session.execute(&format!("DROP TABLE IF EXISTS sim_{inputs}"))?;
        session.execute(&format!(
            "CREATE TABLE sim_{inputs} (ts timestamp, instanceid text, varname text, value float)"
        ))?;
        session.execute(&format!(
            "INSERT INTO sim_{inputs} \
             SELECT * FROM fmu_simulate('Room1', 'SELECT * FROM {inputs}') \
             WHERE varname = 't'"
        ))?;
        let q = session.execute(&format!(
            "SELECT sqrt(avg((s.value - c.t) * (s.value - c.t))) \
             FROM sim_{inputs} s, classroom c WHERE s.ts = c.ts"
        ))?;
        Ok(q.scalar()?.as_f64()?)
    };

    let rmse_no_occ = rmse_for("inputs_no_occ")?;
    let rmse_arima = rmse_for("inputs_arima")?;
    println!("\nIndoor-temperature forecast RMSE on the validation window:");
    println!("  without occupancy info : {rmse_no_occ:.3} degC");
    println!("  with ARIMA occupancy   : {rmse_arima:.3} degC");
    println!(
        "  improvement            : {:.1}%",
        (rmse_no_occ - rmse_arima) / rmse_no_occ * 100.0
    );

    // --- Reverse direction: pgFMU features improve an ML classifier. --------
    // Classify damper position (open/closed). The pgFMU-provided feature is
    // the *simulated* indoor temperature over the full window (the paper:
    // "we used the indoor temperatures of the Classroom computed using
    // pgFMU").
    session.execute(&format!(
        "SELECT fmu_set_initial('Room1', 't', {})",
        data.column("t").unwrap()[0]
    ))?;
    session.execute(
        "CREATE TABLE sim_full (ts timestamp, instanceid text, varname text, value float)",
    )?;
    session.execute(
        "INSERT INTO sim_full \
         SELECT * FROM fmu_simulate('Room1', 'SELECT * FROM classroom') \
         WHERE varname = 't'",
    )?;
    session.execute("CREATE TABLE damper (label float, occ float, solrad float, t float)")?;
    session.execute(
        "INSERT INTO damper \
         SELECT greatest(0.0, least(1.0, c.dpos / 100.0)), c.occ, c.solrad, s.value \
         FROM classroom c, sim_full s WHERE c.ts = s.ts",
    )?;
    session.execute("SELECT logregr_train('damper', 'm_base', 'label', 'occ,solrad')")?;
    session.execute("SELECT logregr_train('damper', 'm_temp', 'label', 'occ,solrad,t')")?;
    // One grouped statement per model replaces the old per-outcome count
    // queries: the logistic UDF's hit/miss breakdown comes back as two
    // GROUP BY buckets.
    let acc = |model: &str, cols: &str| -> Result<f64, Box<dyn std::error::Error>> {
        let buckets: Vec<(bool, i64)> = session.query_as(
            &format!(
                "SELECT (logregr_prob('{model}', {cols}) >= 0.5) = (label >= 0.5) AS correct, \
                 count(*) FROM damper GROUP BY 1 ORDER BY 1"
            ),
            &[],
        )?;
        let hits = buckets
            .iter()
            .find(|(correct, _)| *correct)
            .map_or(0, |(_, n)| *n);
        Ok(hits as f64 / data.len() as f64)
    };
    let base_acc = acc("m_base", "occ, solrad")?;
    let temp_acc = acc("m_temp", "occ, solrad, t")?;
    println!("\nDamper-position classification accuracy:");
    println!(
        "  occupancy + solar features      : {:.1}%",
        base_acc * 100.0
    );
    println!(
        "  + indoor temperature (pgFMU)    : {:.1}%",
        temp_acc * 100.0
    );
    println!(
        "  improvement                     : {:.1} points",
        (temp_acc - base_acc) * 100.0
    );
    Ok(())
}
