//! The paper's running example (§2, Figure 1) end-to-end: predict indoor
//! temperatures of a heat-pump-heated house under different heating
//! scenarios, with calibration against measurements stored in the DBMS.
//!
//! The whole analytical workflow is four SQL statements — the paper's
//! Table 1 contrast with the 88-line traditional stack.
//!
//! Run with: `cargo run --release --example heatpump_calibration`

use pgfmu::PgFmu;
use pgfmu_datagen::hp::hp1_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PgFmu::new()?;

    // Measurements: the NIST-like February dataset (hourly; x = indoor
    // temperature, y = HP consumption, u = power rating setting). In the
    // paper these rows come from the building's sensor infrastructure.
    let data = hp1_dataset(42);
    data.load_into(session.db(), "measurements")?;
    println!(
        "Loaded {} hourly measurements into table `measurements`.",
        data.len()
    );

    // -- SQL line 1: create the model instance. -----------------------------
    session.execute("SELECT fmu_create('HP1', 'HP1Instance1')")?;

    // -- SQL line 2: calibrate Cp and R against Feb 1-21. --------------------
    let rmse = session.execute(
        "SELECT fmu_parest('{HP1Instance1}', \
         '{SELECT ts, x, u FROM measurements \
           WHERE ts < timestamp ''2015-02-22 00:00''}', '{Cp, R}')",
    )?;
    println!("Calibration RMSE: {:.4} degC", rmse.scalar()?.as_f64()?);
    let params = session.execute(
        "SELECT varname, value FROM modelinstancevalues \
         WHERE instanceid = 'HP1Instance1' AND varname IN ('Cp', 'R')",
    )?;
    println!(
        "Estimated parameters (truth: Cp=1.5, R=1.5):\n{}",
        params.to_ascii()
    );

    // -- SQL line 3: predict the validation week under the recorded inputs. --
    let validation = session.execute(
        "SELECT count(*) AS points, min(value) AS coldest, max(value) AS warmest \
         FROM fmu_simulate('HP1Instance1', \
              'SELECT ts, u FROM measurements \
               WHERE ts >= timestamp ''2015-02-22 00:00''') \
         WHERE varName = 'x'",
    )?;
    println!(
        "Validation-week prediction summary:\n{}",
        validation.to_ascii()
    );

    // -- SQL line 4: a what-if heating scenario (max power all week). --------
    session.execute("CREATE TABLE scenario (ts timestamp, u float)")?;
    session.execute(
        "INSERT INTO scenario \
         SELECT g, 1.0 FROM generate_series(timestamp '2015-02-22 00:00', \
            timestamp '2015-02-28 23:00', interval '1 hour') AS g",
    )?;
    let scenario = session.execute(
        "SELECT max(value) AS max_temp \
         FROM fmu_simulate('HP1Instance1', 'SELECT * FROM scenario') \
         WHERE varName = 'x'",
    )?;
    println!(
        "Max indoor temperature under the heating-at-max-power scenario:\n{}",
        scenario.to_ascii()
    );
    Ok(())
}
