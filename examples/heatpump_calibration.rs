//! The paper's running example (§2, Figure 1) end-to-end: predict indoor
//! temperatures of a heat-pump-heated house under different heating
//! scenarios, with calibration against measurements stored in the DBMS.
//!
//! The whole analytical workflow is four SQL statements — the paper's
//! Table 1 contrast with the 88-line traditional stack. Every statement is
//! executed through the prepared-statement API: values are bound to
//! `$1..$n` placeholders (no literal quoting — note how the calibration
//! window timestamp needs no doubled-quote escaping), and results decode
//! straight into Rust types.
//!
//! Run with: `cargo run --release --example heatpump_calibration`

use pgfmu::{params, PgFmu};
use pgfmu_datagen::hp::hp1_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PgFmu::new()?;

    // Measurements: the NIST-like February dataset (hourly; x = indoor
    // temperature, y = HP consumption, u = power rating setting). In the
    // paper these rows come from the building's sensor infrastructure.
    let data = hp1_dataset(42);
    data.load_into(session.db(), "measurements")?;
    println!(
        "Loaded {} hourly measurements into table `measurements`.",
        data.len()
    );

    // -- SQL line 1: create the model instance. -----------------------------
    session
        .prepare("SELECT fmu_create($1, $2)")?
        .query(params!["HP1", "HP1Instance1"])?;

    // -- SQL line 2: calibrate Cp and R against Feb 1-21. --------------------
    let rmse: Vec<f64> = session.query_as(
        "SELECT fmu_parest($1, $2, $3)",
        params![
            "{HP1Instance1}",
            "{SELECT ts, x, u FROM measurements WHERE ts < timestamp '2015-02-22 00:00'}",
            "{Cp, R}"
        ],
    )?;
    println!("Calibration RMSE: {:.4} degC", rmse[0]);
    let params_est: Vec<(String, f64)> = session.query_as(
        "SELECT varname, value FROM modelinstancevalues \
         WHERE instanceid = $1 AND varname IN ($2, $3)",
        params!["HP1Instance1", "Cp", "R"],
    )?;
    println!("Estimated parameters (truth: Cp=1.5, R=1.5):");
    for (name, value) in &params_est {
        println!("  {name} = {value:.3}");
    }

    // -- SQL line 3: predict the validation week under the recorded inputs. --
    let validation = session.query(
        "SELECT count(*) AS points, min(value) AS coldest, max(value) AS warmest \
         FROM fmu_simulate($1, $2) WHERE varName = $3",
        params![
            "HP1Instance1",
            "SELECT ts, u FROM measurements WHERE ts >= timestamp '2015-02-22 00:00'",
            "x"
        ],
    )?;
    println!(
        "Validation-week prediction summary:\n{}",
        validation.to_ascii()
    );
    // Wide result rows also decode by column name, so the code stays
    // correct if the projection above gains or reorders columns.
    if let Some(row) = validation.named_rows().next() {
        println!(
            "  ({} points, coldest {:.2} degC)",
            row.get::<i64>("points")?,
            row.get::<f64>("coldest")?
        );
    }

    // -- SQL line 4: a what-if heating scenario (max power all week). --------
    session.execute("CREATE TABLE scenario (ts timestamp, u float)")?;
    session
        .prepare(
            "INSERT INTO scenario \
             SELECT g, $1 FROM generate_series(timestamp '2015-02-22 00:00', \
                timestamp '2015-02-28 23:00', interval '1 hour') AS g",
        )?
        .query(params![1.0])?;
    let max_temp: Vec<Option<f64>> = session.query_as(
        "SELECT max(value) AS max_temp \
         FROM fmu_simulate($1, $2) WHERE varName = $3",
        params!["HP1Instance1", "SELECT * FROM scenario", "x"],
    )?;
    println!(
        "Max indoor temperature under the heating-at-max-power scenario: {:.2} degC",
        max_temp[0].unwrap_or(f64::NAN)
    );
    Ok(())
}
