//! In-DBMS FMU-based dynamic optimization (the paper's §9 future-work
//! item, implemented here): find the heat-pump control schedule that
//! brings a cold house to a setpoint and holds it there, directly from
//! SQL via `fmu_control`.
//!
//! Run with: `cargo run --release --example model_predictive_control`

use pgfmu::PgFmu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PgFmu::new()?;
    session.execute("SELECT fmu_create('HP1', 'House')")?;
    // It is 5 degrees inside after a power outage.
    session.execute("SELECT fmu_set_initial('House', 'x', 5.0)")?;

    // Optimize 12 two-hour control intervals toward a 20 degC setpoint,
    // with a small penalty on energy use.
    let plan = session.execute("SELECT * FROM fmu_control('House', 'u', 24.0, 12, 20.0, 0.005)")?;
    println!("Optimized heat-pump schedule (hours from now, power rating):");
    println!("{}", plan.to_ascii());

    // Apply the optimized schedule through fmu_simulate and inspect the
    // resulting trajectory — all still inside the DBMS.
    session.execute("CREATE TABLE plan (ts timestamp, u float)")?;
    session.execute(
        "INSERT INTO plan SELECT timestamp '2015-02-01 00:00' + \
         (hours * 3600)::int * interval '1 second', value \
         FROM fmu_control('House', 'u', 24.0, 12, 20.0, 0.005)",
    )?;
    let trajectory = session.execute(
        "SELECT min(value) AS coldest_after_start, max(value) AS warmest \
         FROM fmu_simulate('House', 'SELECT * FROM plan', \
              timestamp '2015-02-01 02:00', timestamp '2015-02-01 22:00') \
         WHERE varname = 'x'",
    )?;
    println!(
        "Resulting indoor-temperature envelope (t>=2h):\n{}",
        trajectory.to_ascii()
    );
    Ok(())
}
