//! Multi-instance calibration and simulation: 10 heat pumps of the same
//! type in a neighbourhood (paper §6's motivating scenario).
//!
//! Demonstrates the MI optimization: the first instance pays the full
//! global+local estimation cost, similar instances reuse its optimum via
//! a warm-started local search (LO), and the whole fleet is simulated
//! with one LATERAL query.
//!
//! Run with: `cargo run --release --example multi_instance`

use pgfmu::{params, EstimationConfig, PgFmu};
use pgfmu_datagen::hp::hp1_dataset;
use pgfmu_datagen::synthetic_instances;

const N_INSTANCES: usize = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PgFmu::new()?;
    session.set_estimation_config(EstimationConfig::default());

    // One house's measurements plus delta-scaled variants for the other
    // houses (the paper's synthetic MI datasets, delta in [0.8, 1.2]).
    let base = hp1_dataset(7).slice(0, 168);
    let datasets = synthetic_instances(&base, N_INSTANCES, 123);

    let mut ids = Vec::new();
    let mut sqls = Vec::new();
    session.query("SELECT fmu_create($1, $2)", params!["HP1", "HP1Instance1"])?;
    // One prepared plan drives every per-instance copy; only the target
    // instance id varies per execution.
    let copy = session.prepare("SELECT fmu_copy($1, $2)")?;
    for (i, (delta, data)) in datasets.iter().enumerate() {
        let table = format!("measurements{}", i + 1);
        data.load_into(session.db(), &table)?;
        let id = format!("HP1Instance{}", i + 1);
        if i > 0 {
            copy.query(params!["HP1Instance1", id.as_str()])?;
        }
        println!("instance {id}: dataset delta = {delta:.3}");
        ids.push(id);
        sqls.push(format!("SELECT ts, x, u FROM {table}"));
    }

    // Estimate all instances; Algorithm 3 decides G+LaG vs LO per instance.
    // The array arguments bind as plain text — no literal quoting needed.
    let report = session.query(
        "SELECT * FROM fmu_parest_report($1, $2, $3)",
        params![
            format!("{{{}}}", ids.join(", ")),
            format!("{{{}}}", sqls.join(", ")),
            "{Cp, R}"
        ],
    )?;
    println!("\nPer-instance estimation report:\n{}", report.to_ascii());

    // Fleet-wide simulation with the paper's LATERAL pattern, rolled up
    // per instance in the same statement — before GROUP BY landed this
    // took one query (or a client-side fold) per heat pump.
    let fleet = session.execute(&format!(
        "SELECT f.instanceid, count(*) AS samples, avg(f.value) AS mean_temp \
         FROM generate_series(1, {N_INSTANCES}) AS id, \
         LATERAL fmu_simulate('HP1Instance' || id::text, \
                              'SELECT ts, u FROM measurements' || id::text) AS f \
         WHERE f.varName = 'x' \
         GROUP BY f.instanceid ORDER BY f.instanceid"
    ))?;
    println!(
        "LATERAL fleet simulation, per instance:\n{}",
        fleet.to_ascii()
    );

    // How much compute did the MI optimization save?
    let evals = session.execute(
        "SELECT sum(globalevals) AS global_evals, sum(localevals) AS local_evals \
         FROM fmu_parest_report('{HP1Instance1, HP1Instance2}', \
         '{SELECT ts, x, u FROM measurements1, SELECT ts, x, u FROM measurements2}', \
         '{Cp, R}')",
    )?;
    println!(
        "Objective evaluations (first two instances):\n{}",
        evals.to_ascii()
    );
    Ok(())
}
