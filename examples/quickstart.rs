//! Quickstart: create an FMU model instance from inline Modelica source,
//! inspect it, simulate it, and read the results — all through SQL, using
//! the prepared-statement (bind/decode) client API.
//!
//! Run with: `cargo run --example quickstart`

use pgfmu::{params, PgFmu};

const HEATPUMP_MO: &str = "model heatpump \
   parameter Real A(min = -10, max = 10) = -0.444 \"state coefficient\"; \
   parameter Real B(min = -20, max = 20) = 13.78 \"input gain\"; \
   parameter Real E(min = -20, max = 20) = -4.444 \"offset\"; \
   parameter Real C = 0; \
   parameter Real D = 7.8; \
   discrete input Real u(min = 0, max = 1) \"HP power rating\"; \
   output Real y \"HP power consumption\"; \
   Real x(start = 20.75) \"indoor temperature\"; \
 equation \
   der(x) = A*x + B*u + E; \
   y = C*x + D*u; \
 end heatpump;";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pgFMU session: an in-memory DBMS with the pgFMU UDFs installed.
    let session = PgFmu::new()?;

    // 1. Create a model instance from inline Modelica source (the paper's
    //    Figure-2 heat pump). The source is passed as a $1 bind value, so
    //    no quote-escaping of the Modelica text is needed.
    session
        .prepare("SELECT fmu_create($1, $2)")?
        .query(params![HEATPUMP_MO, "HP1Instance1"])?;

    // 2. Inspect the instance's variables (paper Table 3).
    let vars = session.query(
        "SELECT * FROM fmu_variables($1) AS f WHERE f.varType = $2",
        params!["HP1Instance1", "parameter"],
    )?;
    println!("Model parameters:\n{}", vars.to_ascii());

    // 3. Provide a small control schedule and simulate 24 hours. The
    //    prepared INSERT binds one (timestamp, power) row per execution.
    session.execute("CREATE TABLE schedule (ts timestamp, u float)")?;
    let insert = session.prepare("INSERT INTO schedule VALUES ($1, $2)")?;
    for hour in 0..=24i64 {
        let ts = format!("2015-02-{:02} {:02}:00", 1 + hour / 24, hour % 24);
        insert.query(params![ts, 0.9])?;
    }
    let sim = session.query(
        "SELECT simulationTime, varName, value \
         FROM fmu_simulate($1, $2) \
         WHERE varName = $3 ORDER BY simulationTime LIMIT 8",
        params!["HP1Instance1", "SELECT * FROM schedule", "x"],
    )?;
    println!(
        "First hours of simulated indoor temperature:\n{}",
        sim.to_ascii()
    );

    // 4. Plain SQL over the simulation results (Figure 1, step 7), decoded
    //    straight into Rust floats.
    let envelope: Vec<(f64, f64)> = session.query_as(
        "SELECT min(value) AS coldest, max(value) AS warmest \
         FROM fmu_simulate($1, $2) WHERE varName = $3",
        params!["HP1Instance1", "SELECT * FROM schedule", "x"],
    )?;
    let (coldest, warmest) = envelope[0];
    println!("Temperature envelope: {coldest:.2} .. {warmest:.2} degC");

    // 5. Which variables did the simulation report? SELECT DISTINCT over
    //    the long-format output, one row per variable.
    let vars: Vec<String> = session.query_as(
        "SELECT DISTINCT varName FROM fmu_simulate($1, $2) ORDER BY varName",
        params!["HP1Instance1", "SELECT * FROM schedule"],
    )?;
    println!("Simulated variables: {}", vars.join(", "));
    Ok(())
}
