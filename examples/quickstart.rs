//! Quickstart: create an FMU model instance from inline Modelica source,
//! inspect it, simulate it, and read the results — all through SQL.
//!
//! Run with: `cargo run --example quickstart`

use pgfmu::PgFmu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pgFMU session: an in-memory DBMS with the pgFMU UDFs installed.
    let session = PgFmu::new()?;

    // 1. Create a model instance from inline Modelica source (the paper's
    //    Figure-2 heat pump). `fmu_create` compiles the model, registers
    //    it in the model catalogue and creates the instance.
    session.execute(
        "SELECT fmu_create('model heatpump \
           parameter Real A(min = -10, max = 10) = -0.444 \"state coefficient\"; \
           parameter Real B(min = -20, max = 20) = 13.78 \"input gain\"; \
           parameter Real E(min = -20, max = 20) = -4.444 \"offset\"; \
           parameter Real C = 0; \
           parameter Real D = 7.8; \
           discrete input Real u(min = 0, max = 1) \"HP power rating\"; \
           output Real y \"HP power consumption\"; \
           Real x(start = 20.75) \"indoor temperature\"; \
         equation \
           der(x) = A*x + B*u + E; \
           y = C*x + D*u; \
         end heatpump;', 'HP1Instance1')",
    )?;

    // 2. Inspect the instance's variables (paper Table 3).
    let vars = session.execute(
        "SELECT * FROM fmu_variables('HP1Instance1') AS f \
         WHERE f.varType = 'parameter'",
    )?;
    println!("Model parameters:\n{}", vars.to_ascii());

    // 3. Provide a small control schedule and simulate 24 hours.
    session.execute("CREATE TABLE schedule (ts timestamp, u float)")?;
    session.execute(
        "INSERT INTO schedule \
         SELECT g, 0.9 FROM generate_series(timestamp '2015-02-01 00:00', \
            timestamp '2015-02-02 00:00', interval '1 hour') AS g",
    )?;
    let sim = session.execute(
        "SELECT simulationTime, varName, value \
         FROM fmu_simulate('HP1Instance1', 'SELECT * FROM schedule') \
         WHERE varName = 'x' ORDER BY simulationTime LIMIT 8",
    )?;
    println!(
        "First hours of simulated indoor temperature:\n{}",
        sim.to_ascii()
    );

    // 4. Plain SQL over the simulation results (Figure 1, step 7).
    let stats = session.execute(
        "SELECT min(value) AS coldest, max(value) AS warmest \
         FROM fmu_simulate('HP1Instance1', 'SELECT * FROM schedule') \
         WHERE varName = 'x'",
    )?;
    println!("Temperature envelope:\n{}", stats.to_ascii());
    Ok(())
}
