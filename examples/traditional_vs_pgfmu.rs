//! The traditional Python-stack workflow vs. pgFMU, head to head on the
//! same task (paper Figure 1 / Table 8): store, calibrate, validate and
//! simulate one heat-pump model.
//!
//! Run with: `cargo run --release --example traditional_vs_pgfmu`

use std::time::Instant;

use pgfmu::{EstimationConfig, PgFmu};
use pgfmu_baseline::TraditionalWorkflow;
use pgfmu_datagen::hp::hp1_dataset;
use pgfmu_fmi::{archive, builtin};
use pgfmu_sqlmini::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EstimationConfig::default();
    let data = hp1_dataset(3).slice(0, 168);

    // ---------------- Traditional stack ------------------------------------
    let db = Database::new();
    data.load_into(&db, "measurements")?;
    let workflow = TraditionalWorkflow::in_temp_dir(cfg)?;
    let fmu_path = workflow.work_dir().join("hp1.fmu");
    archive::write_to_path(&builtin::hp1(), &fmu_path)?;
    let outcome = workflow.run_si(
        &db,
        "measurements",
        &fmu_path,
        &["Cp".into(), "R".into()],
        0.75,
        "demo",
    )?;
    println!("Traditional stack (per Figure-1 step):");
    let t = outcome.timings;
    for (label, d) in [
        ("load FMU", t.load_fmu),
        ("read measurements (via CSV)", t.read_measurements),
        ("recalibrate", t.calibrate),
        ("validate & update", t.validate),
        ("simulate", t.simulate),
        ("export predictions (via CSV)", t.export),
    ] {
        println!("  {label:<30} {:>10.2?}", d);
    }
    println!("  {:<30} {:>10.2?}", "TOTAL", t.total());
    println!(
        "  estimated Cp={:.3} R={:.3}, estimation RMSE {:.4}, validation RMSE {:.4}\n",
        outcome.params[0], outcome.params[1], outcome.estimation_rmse, outcome.validation_rmse
    );

    // ---------------- pgFMU -------------------------------------------------
    let session = PgFmu::new()?;
    session.set_estimation_config(cfg);
    data.load_into(session.db(), "measurements")?;
    let t0 = Instant::now();
    session.execute("SELECT fmu_create('HP1', 'HP1Instance1')")?;
    let t_create = t0.elapsed();
    let t0 = Instant::now();
    let reports = session.fmu_parest(
        &["HP1Instance1".into()],
        &["SELECT ts, x, u FROM measurements WHERE ts < timestamp '2015-02-06 06:00'".into()],
        Some(&["Cp".into(), "R".into()]),
        None,
    )?;
    let t_parest = t0.elapsed();
    let t0 = Instant::now();
    session.execute(
        "CREATE TABLE predictions (ts timestamp, instanceid text, varname text, value float)",
    )?;
    session.execute(
        "INSERT INTO predictions SELECT * FROM fmu_simulate('HP1Instance1', \
         'SELECT ts, u FROM measurements') WHERE varname = 'x'",
    )?;
    let t_simulate = t0.elapsed();

    println!("pgFMU (everything in-DBMS, no file hand-offs):");
    println!("  {:<30} {:>10.2?}", "fmu_create", t_create);
    println!("  {:<30} {:>10.2?}", "fmu_parest", t_parest);
    println!("  {:<30} {:>10.2?}", "fmu_simulate + INSERT", t_simulate);
    println!(
        "  {:<30} {:>10.2?}",
        "TOTAL",
        t_create + t_parest + t_simulate
    );
    println!(
        "  estimated Cp={:.3} R={:.3}, estimation RMSE {:.4}",
        reports[0].params[0], reports[0].params[1], reports[0].rmse
    );
    println!(
        "\nModel quality is identical by construction (same estimation \
         engine); pgFMU removes the I/O overhead and, for fleets, the \
         repeated global search (see `multi_instance` example)."
    );
    Ok(())
}
