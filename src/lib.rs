//! Workspace-level umbrella for the pgFMU-rs reproduction.
//!
//! This package exists to host the runnable `examples/` and the
//! cross-crate integration tests in `tests/`; the library surface simply
//! re-exports the member crates so examples can depend on one name.
//!
//! The crate-level documentation below is the repository `README.md`,
//! included verbatim so its code blocks are compiled and run as doc-tests
//! (`cargo test --doc -p pgfmu-rs`) — the README cannot silently rot.
#![doc = include_str!("../README.md")]

pub use pgfmu;
pub use pgfmu_analytics as analytics;
pub use pgfmu_baseline as baseline;
pub use pgfmu_catalog as catalog;
pub use pgfmu_datagen as datagen;
pub use pgfmu_estimation as estimation;
pub use pgfmu_fmi as fmi;
pub use pgfmu_modelica as modelica;
pub use pgfmu_sqlmini as sqlmini;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_re_exports_compose() {
        let session = pgfmu::PgFmu::new().unwrap();
        session
            .execute("SELECT fmu_create('HP0', 'smoke')")
            .unwrap();
        let q = session
            .execute("SELECT count(*) FROM modelinstance")
            .unwrap();
        assert_eq!(q.rows[0][0], crate::sqlmini::Value::Int(1));
    }
}
