//! Cross-crate integration tests: the paper's SQL examples executed
//! against a full session, exercising every model-reference ingestion path
//! (`.fmu` archive on disk, `.mo` file on disk, inline source, builtin).

use pgfmu::{EstimationConfig, PgFmu, Value};
use pgfmu_datagen::hp::hp1_dataset;
use pgfmu_fmi::{archive, builtin};
use pgfmu_modelica::sources;

fn temp_file(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pgfmu-suite-{}-{name}", std::process::id()))
}

#[test]
fn fmu_create_from_fmu_file_path() {
    // `SELECT fmu_create('/tmp/hp1.fmu', 'HP1Instance1');` — paper §5.
    let path = temp_file("hp1.fmu");
    archive::write_to_path(&builtin::hp1(), &path).unwrap();
    let s = PgFmu::new().unwrap();
    let q = s
        .execute(&format!(
            "SELECT fmu_create('{}', 'HP1Instance1')",
            path.display()
        ))
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("HP1Instance1".into()));
    std::fs::remove_file(path).ok();
}

#[test]
fn fmu_create_from_mo_file_path() {
    // `SELECT fmu_create('HP0Instance1', '/tmp/model.mo');` — paper §5
    // (note the swapped argument order, which pgFMU tolerates).
    let path = temp_file("model.mo");
    std::fs::write(&path, sources::HP1_MO).unwrap();
    let s = PgFmu::new().unwrap();
    let q = s
        .execute(&format!(
            "SELECT fmu_create('HP0Instance1', '{}')",
            path.display()
        ))
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("HP0Instance1".into()));
    // The compiled model landed in the catalogue with Figure-2 variables.
    let vars = s
        .execute("SELECT count(*) FROM fmu_variables('HP0Instance1')")
        .unwrap();
    assert_eq!(vars.rows[0][0], Value::Int(8));
    std::fs::remove_file(path).ok();
}

#[test]
fn compiled_mo_and_builtin_agree_end_to_end() {
    // The HP1 .mo source and the builtin HP1 must produce identical
    // simulations through the whole stack (compiler → catalogue → UDF).
    let s = PgFmu::new().unwrap();
    hp1_dataset(5).slice(0, 48).load_into(s.db(), "m").unwrap();
    s.execute(&format!(
        "SELECT fmu_create('{}', 'compiled')",
        sources::HP1_CP_R_MO.replace('\'', "''").replace('\n', " ")
    ))
    .unwrap();
    s.execute("SELECT fmu_create('HP1', 'builtin')").unwrap();
    let q = |id: &str| {
        s.execute(&format!(
            "SELECT value FROM fmu_simulate('{id}', 'SELECT ts, u FROM m') \
             WHERE varname = 'x' ORDER BY simulationtime"
        ))
        .unwrap()
    };
    let a = q("compiled");
    let b = q("builtin");
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        let (va, vb) = (ra[0].as_f64().unwrap(), rb[0].as_f64().unwrap());
        assert!((va - vb).abs() < 1e-9, "{va} vs {vb}");
    }
}

#[test]
fn si_and_mi_estimation_have_comparable_accuracy() {
    // Paper §6: "The empirical evaluation of the MI parameter estimation
    // shows identical accuracy with and without MI optimization."
    let s = PgFmu::new().unwrap();
    s.set_estimation_config(EstimationConfig::fast());
    let base = hp1_dataset(2).slice(0, 96);
    base.load_into(s.db(), "m1").unwrap();
    pgfmu_datagen::scale_dataset(&base, 1.06)
        .load_into(s.db(), "m2")
        .unwrap();
    s.execute("SELECT fmu_create('HP1', 'a')").unwrap();
    s.execute("SELECT fmu_copy('a', 'b')").unwrap();

    // pgFMU+ (MI enabled).
    let mi = s
        .fmu_parest(
            &["a".into(), "b".into()],
            &[
                "SELECT ts, x, u FROM m1".into(),
                "SELECT ts, x, u FROM m2".into(),
            ],
            Some(&["Cp".into(), "R".into()]),
            None,
        )
        .unwrap();
    // pgFMU− (MI disabled) on fresh instances.
    s.set_mi_enabled(false);
    s.execute("SELECT fmu_copy('a', 'c')").unwrap();
    s.execute("SELECT fmu_copy('a', 'd')").unwrap();
    let si = s
        .fmu_parest(
            &["c".into(), "d".into()],
            &[
                "SELECT ts, x, u FROM m1".into(),
                "SELECT ts, x, u FROM m2".into(),
            ],
            Some(&["Cp".into(), "R".into()]),
            None,
        )
        .unwrap();
    assert_eq!(mi[1].strategy, pgfmu::Strategy::LocalOnly);
    assert_eq!(si[1].strategy, pgfmu::Strategy::GlobalLocal);
    // Same accuracy (within a small band), far less work.
    assert!(
        mi[1].rmse <= si[1].rmse * 1.2 + 0.05,
        "MI rmse {} vs SI rmse {}",
        mi[1].rmse,
        si[1].rmse
    );
    assert!(mi[1].global_evals == 0 && si[1].global_evals > 0);
}

#[test]
fn catalogue_is_queryable_alongside_user_tables() {
    // The catalogue is ordinary SQL state: join it with user data.
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('Classroom', 'Room1')")
        .unwrap();
    let q = s
        .execute(
            "SELECT count(*) AS vars FROM model m, modelvariable v \
             WHERE m.modelid = v.modelid AND m.name = 'Classroom'",
        )
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(12));
    let q = s
        .execute("SELECT m.name FROM model m, modelinstance i WHERE m.modelid = i.modelid")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("Classroom".into()));
}

#[test]
fn baseline_and_pgfmu_agree_on_model_quality() {
    // Paper Table 7: Python vs pgFMU± converge to the same parameters and
    // near-identical RMSEs (they share the estimation machinery).
    let cfg = EstimationConfig::fast();
    let data = hp1_dataset(9).slice(0, 96);

    // pgFMU path.
    let s = PgFmu::new().unwrap();
    s.set_estimation_config(cfg);
    data.load_into(s.db(), "measurements").unwrap();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    let reports = s
        .fmu_parest(
            &["i".into()],
            &["SELECT ts, x, u FROM measurements".into()],
            Some(&["Cp".into(), "R".into()]),
            None,
        )
        .unwrap();

    // Baseline path.
    let db = pgfmu_sqlmini::Database::new();
    data.load_into(&db, "measurements").unwrap();
    let wf = pgfmu_baseline::TraditionalWorkflow::in_temp_dir(cfg).unwrap();
    let fmu_path = wf.work_dir().join("hp1.fmu");
    archive::write_to_path(&builtin::hp1(), &fmu_path).unwrap();
    let out = wf
        .run_si(
            &db,
            "measurements",
            &fmu_path,
            &["Cp".into(), "R".into()],
            1.0,
            "cmp",
        )
        .unwrap();

    // The baseline's measurement file carries the extra `y` column, which
    // rescales the objective (y is exactly P*u, contributing zero error);
    // the optimum is unchanged but stopping tests fire at minutely
    // different points. The paper reports relative differences <= 0.02%
    // across configurations; we are orders of magnitude tighter.
    for (a, b) in reports[0].params.iter().zip(&out.params) {
        assert!(
            (a - b).abs() / b.abs() < 2e-4,
            "parameter divergence: {a} vs {b}"
        );
    }
}

#[test]
fn full_workflow_single_statement_composition() {
    // §7: UDFs compose — calibrate, then feed fmu_simulate's output into
    // ordinary SQL aggregation, in one statement after setup.
    let s = PgFmu::new().unwrap();
    s.set_estimation_config(EstimationConfig::fast());
    hp1_dataset(4).slice(0, 72).load_into(s.db(), "m").unwrap();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    s.execute("SELECT fmu_parest('i', 'SELECT ts, x, u FROM m', '{Cp, R}')")
        .unwrap();
    // Aggregate next to a bare column requires GROUP BY (PostgreSQL rule)…
    let err = s
        .execute(
            "SELECT varname, avg(value) AS mean_value \
             FROM fmu_simulate('i', 'SELECT ts, u FROM m') \
             WHERE value IS NOT NULL",
        )
        .unwrap_err();
    assert!(
        err.to_string()
            .contains("must appear in the GROUP BY clause"),
        "{err}"
    );
    // …and with GROUP BY the paper's MADlib-style combo runs per variable
    // in one statement, HAVING pruning the constant output series.
    let q = s
        .execute(
            "SELECT varname, avg(value) AS mean_value, count(*) AS n \
             FROM fmu_simulate('i', 'SELECT ts, u FROM m') \
             WHERE varname IN ('x', 'y') AND value IS NOT NULL \
             GROUP BY varname HAVING count(*) > 10 ORDER BY varname",
        )
        .unwrap();
    assert_eq!(q.columns, vec!["varname", "mean_value", "n"]);
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[0][0], Value::Text("x".into()));
    let mean = q.rows[0][1].as_f64().unwrap();
    assert!((5.0..25.0).contains(&mean), "implausible mean {mean}");
    assert_eq!(q.rows[1][0], Value::Text("y".into()));
}

#[test]
fn deleting_shared_model_invalidates_all_instances_everywhere() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('HP0', 'a')").unwrap();
    s.execute("SELECT fmu_copy('a', 'b')").unwrap();
    s.execute("SELECT fmu_delete_model('HP0')").unwrap();
    for id in ["a", "b"] {
        assert!(s
            .execute(&format!("SELECT * FROM fmu_simulate('{id}')"))
            .is_err());
    }
    // Re-creating works and gets a fresh UUID.
    s.execute("SELECT fmu_create('HP0', 'a')").unwrap();
    assert_eq!(
        s.execute("SELECT count(*) FROM model").unwrap().rows[0][0],
        Value::Int(1)
    );
}
