//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an owned byte buffer with a read cursor (upstream's view
//! semantics collapsed to the single-owner case), [`BytesMut`] a growable
//! write buffer. The [`Buf`] / [`BufMut`] traits carry the accessor subset
//! the workspace's archive codec uses, all little-endian.

use std::ops::Deref;

/// Read-side accessors over a consumable byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write-side accessors over a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An owned, cheaply clonable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f64_le(-2.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.remaining(), 4);
        b.get_u16_le();
        assert_eq!(b.remaining(), 2);
        assert_eq!(&*b, &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        Bytes::copy_from_slice(&[1]).advance(2);
    }
}
