//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, the
//! [`Criterion`] builder and [`Bencher::iter`] so the workspace's benches
//! compile (`cargo bench --no-run`) and run as quick smoke benchmarks.
//! Unlike upstream there is no full statistics engine, but each
//! `bench_function` records per-sample wall-clock times and reports the
//! **median ± MAD** (median absolute deviation) through the [`stats`]
//! module — robust location/spread estimates that a stray
//! context-switch cannot drag around the way a mean can. The per-function
//! time budget is the configured `measurement_time`, capped by the
//! `PGFMU_BENCH_MAX_SECS` environment variable (default 1s) so a full
//! `cargo bench` sweep stays laptop-friendly.

use std::time::{Duration, Instant};

/// Robust summary statistics over raw timing samples — shared by the
/// bench harness and the `repro bench` driver (which records them to
/// `BENCH_PR*.json`).
pub mod stats {
    /// Median and median-absolute-deviation of a sample set.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Summary {
        /// Median of the samples (0 when empty).
        pub median: f64,
        /// Median of `|x - median|` — a robust spread estimate.
        pub mad: f64,
        /// Number of samples summarized.
        pub n: usize,
    }

    fn median_of(sorted: &[f64]) -> f64 {
        let n = sorted.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// Summarize samples (any order; non-finite values are ignored).
    pub fn summarize(samples: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        let median = median_of(&sorted);
        let mut dev: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations compare"));
        Summary {
            median,
            mad: median_of(&dev),
            n: sorted.len(),
        }
    }
}

/// Measurement configuration and bench registry entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    fn budget(&self) -> Duration {
        let cap = std::env::var("PGFMU_BENCH_MAX_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0);
        self.measurement_time.min(Duration::from_secs_f64(cap))
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget(),
            max_samples: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<40} (no iterations recorded)");
        } else {
            let s = stats::summarize(&b.samples);
            println!(
                "{id:<40} {:>12.1} ns/iter (median, ±{:.1} MAD, {} samples)",
                s.median, s.mad, s.n
            );
        }
        self
    }
}

/// Handed to the bench closure; times repeated invocations of a routine.
pub struct Bencher {
    budget: Duration,
    max_samples: usize,
    iters: u64,
    elapsed: Duration,
    /// Per-sample wall time in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run, untimed.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        self.samples.clear();
        while iters < self.max_samples as u64 && start.elapsed() < self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Prevent the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness CLI flags (`--bench`, filters, …).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // warm-up + at least one timed iteration
        assert!(runs >= 2);
    }

    #[test]
    fn builder_is_chainable() {
        let c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
        assert!(c.budget() <= Duration::from_secs(2));
    }

    #[test]
    fn median_and_mad_are_robust_to_outliers() {
        // Odd count: exact middle element.
        let s = stats::summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mad, 1.0);
        assert_eq!(s.n, 3);
        // Even count: midpoint of the central pair.
        let s = stats::summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.5);
        // A wild outlier barely moves the median and not the MAD, while
        // the mean would be dragged to ~200.
        let s = stats::summarize(&[10.0, 11.0, 9.0, 10.0, 1000.0]);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.mad, 1.0);
        // Non-finite samples are ignored; the empty set is all zeros.
        let s = stats::summarize(&[f64::NAN, f64::INFINITY]);
        assert_eq!((s.median, s.mad, s.n), (0.0, 0.0, 0));
    }
}
