//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, the
//! [`Criterion`] builder and [`Bencher::iter`] so the workspace's benches
//! compile (`cargo bench --no-run`) and run as quick smoke benchmarks.
//! There is no statistics engine: each `bench_function` runs its closure in
//! timed batches and reports the mean wall-clock time per iteration. The
//! per-function time budget is the configured `measurement_time`, capped by
//! the `PGFMU_BENCH_MAX_SECS` environment variable (default 1s) so a full
//! `cargo bench` sweep stays laptop-friendly.

use std::time::{Duration, Instant};

/// Measurement configuration and bench registry entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    fn budget(&self) -> Duration {
        let cap = std::env::var("PGFMU_BENCH_MAX_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0);
        self.measurement_time.min(Duration::from_secs_f64(cap))
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget(),
            max_samples: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<40} (no iterations recorded)");
        } else {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "{id:<40} {:>12.1} ns/iter ({} iterations)",
                per_iter, b.iters
            );
        }
        self
    }
}

/// Handed to the bench closure; times repeated invocations of a routine.
pub struct Bencher {
    budget: Duration,
    max_samples: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run, untimed.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.max_samples as u64 && start.elapsed() < self.budget {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Prevent the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness CLI flags (`--bench`, filters, …).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // warm-up + at least one timed iteration
        assert!(runs >= 2);
    }

    #[test]
    fn builder_is_chainable() {
        let c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
        assert!(c.budget() <= Duration::from_secs(2));
    }
}
