//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! locks exposing the poison-free API (`lock()` / `read()` / `write()`
//! return guards directly). A poisoned std lock is recovered rather than
//! propagated — matching `parking_lot`'s behaviour of never poisoning.
//! [`RwLock::read_arc`] mirrors upstream's `arc_lock` feature: an owned
//! read guard that keeps the lock alive through an `Arc`, usable where a
//! borrowed guard's lifetime cannot be expressed (e.g. a cursor that
//! holds a table's read lock while it streams).

use std::mem::ManuallyDrop;
use std::sync;
use std::sync::Arc;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: 'static> RwLock<T> {
    /// Acquire a read lock whose guard owns a clone of the `Arc` instead
    /// of borrowing the lock (upstream `parking_lot`'s
    /// `RwLock::read_arc`, feature `arc_lock`). The lock is held until
    /// the guard drops; the `Arc` keeps the lock allocation alive for at
    /// least that long.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<T> {
        let lock = Arc::clone(self);
        let guard = lock.0.read().unwrap_or_else(|p| p.into_inner());
        // SAFETY: the guard references the `RwLock` inside the `Arc`
        // allocation, whose address is stable and which `lock` keeps
        // alive for the guard's whole lifetime. `ArcRwLockReadGuard`
        // drops the guard before the `Arc` and never exposes the
        // lifetime-extended guard itself.
        let guard = unsafe {
            std::mem::transmute::<RwLockReadGuard<'_, T>, RwLockReadGuard<'static, T>>(guard)
        };
        ArcRwLockReadGuard {
            guard: ManuallyDrop::new(guard),
            _lock: lock,
        }
    }
}

/// An owned read guard: holds the `Arc<RwLock<T>>` it locked. See
/// [`RwLock::read_arc`].
pub struct ArcRwLockReadGuard<T: ?Sized + 'static> {
    /// Declared (and dropped) before `_lock`: the guard must release the
    /// lock while the `Arc` still keeps it alive.
    guard: ManuallyDrop<RwLockReadGuard<'static, T>>,
    _lock: Arc<RwLock<T>>,
}

impl<T: ?Sized + 'static> std::ops::Deref for ArcRwLockReadGuard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized + 'static> Drop for ArcRwLockReadGuard<T> {
    fn drop(&mut self) {
        // SAFETY: dropped exactly once, before `_lock`.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

impl<T: ?Sized + 'static + std::fmt::Debug> std::fmt::Debug for ArcRwLockReadGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn try_write_contended_returns_none() {
        let l = RwLock::new(0);
        {
            let _r = l.read();
            assert!(l.try_write().is_none());
        }
        *l.try_write().unwrap() += 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn arc_read_guard_outlives_its_borrow_site() {
        let l = Arc::new(RwLock::new(String::from("pinned")));
        let g = {
            // The borrowed `&Arc` goes out of scope; the guard lives on.
            let local = Arc::clone(&l);
            local.read_arc()
        };
        assert_eq!(&*g, "pinned");
        // Other readers coexist with the owned guard.
        assert_eq!(l.read().len(), 6);
        drop(g);
        l.write().push('!');
        assert_eq!(&*l.read(), "pinned!");
    }

    #[test]
    fn arc_read_guard_keeps_lock_alive_after_last_external_arc() {
        let g = Arc::new(RwLock::new(vec![1, 2, 3])).read_arc();
        assert_eq!(g.len(), 3);
    }
}
