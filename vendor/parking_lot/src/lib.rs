//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! locks exposing the poison-free API (`lock()` / `read()` / `write()`
//! return guards directly). A poisoned std lock is recovered rather than
//! propagated — matching `parking_lot`'s behaviour of never poisoning.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }
}
