//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! / `prop_assert*!` / `prop_oneof!` macros, the [`strategy::Strategy`]
//! trait with `prop_map`, `prop_recursive` and `boxed`, range / tuple /
//! [`strategy::Just`] strategies, `collection::vec`, and regex-literal
//! string strategies (a generator for a practical regex subset).
//!
//! Design deltas vs upstream, chosen for an offline vendored shim:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   the assertion message instead of being minimized;
//! * **deterministic seeding** — case `i` of test `t` derives its RNG seed
//!   from `hash(module_path::t, i)`, so failures reproduce exactly across
//!   runs without a persistence file.

pub mod strategy;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG for one test case.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut hasher);
        case.hash(&mut hasher);
        StdRng::seed_from_u64(hasher.finish())
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            vec![$($crate::strategy::Strategy::boxed($strat)),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0i64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn regex_class_and_quantifier(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "bad: {s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn regex_alternation(s in "(ab|cd)+") {
            prop_assert!(!s.is_empty());
            let mut rest = s.as_str();
            while !rest.is_empty() {
                prop_assert!(rest.starts_with("ab") || rest.starts_with("cd"), "bad: {s:?}");
                rest = &rest[2..];
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1i32), Just(2), 10i32..20].prop_map(|x| x * 2),
        ) {
            prop_assert!(v == 2 || v == 4 || (20..40).contains(&v));
        }

        #[test]
        fn tuples_generate_componentwise((a, b) in (0i64..10, "x{1,3}")) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(!b.is_empty() && b.chars().all(|c| c == 'x'));
        }
    }

    #[test]
    fn recursion_terminates_and_varies() {
        use crate::strategy::Strategy;

        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!((0..10).contains(n), "leaf outside its strategy range");
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::rng_for("recursion", 0);
        let mut depths = std::collections::HashSet::new();
        for _ in 0..200 {
            depths.insert(depth(&strat.generate(&mut rng)));
        }
        assert!(depths.len() > 1, "no depth variety: {depths:?}");
        assert!(depths.iter().all(|&d| d <= 5));
    }
}
