//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

mod string_gen;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// structure one level down and returns a strategy for a node using it.
    /// `depth` bounds nesting; the size-tuning parameters of upstream are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // Mix the leaf strategy back in so generated depths vary
            // instead of every value being maximally deep.
            level = Union::new(vec![base.clone(), deeper]).boxed();
        }
        level
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

// --- ranges ----------------------------------------------------------------

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// --- regex string literals -------------------------------------------------

/// A `&str` is interpreted as a regex and generates matching strings
/// (subset: literals, `.`, classes, groups, alternation, `* + ? {m,n}`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        string_gen::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        string_gen::generate_matching(self, rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}
