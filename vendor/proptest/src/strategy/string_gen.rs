//! Generator for strings matching a regex subset.
//!
//! Supported syntax: literal characters, `\`-escapes, `.` (any char but
//! newline), character classes `[...]` with ranges and leading-`^`
//! negation, groups `(...)`, alternation `|`, and the quantifiers `*`,
//! `+`, `?`, `{n}`, `{m,n}`, `{m,}`. Unbounded quantifiers are capped at
//! eight extra repetitions. The parser panics on syntax it does not
//! understand — a regex strategy typo should fail the test loudly, not
//! generate garbage silently.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Clone, Debug)]
enum Node {
    /// Ordered alternatives (`a|b|c`); a single element means no `|`.
    Alt(Vec<Vec<Node>>),
    Literal(char),
    /// `.`
    AnyChar,
    /// Character class: inclusive ranges, possibly negated.
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
    Repeat {
        node: Box<Node>,
        min: u32,
        max: u32,
    },
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, msg: &str) -> ! {
        panic!("unsupported regex {:?}: {msg}", self.pattern);
    }

    fn parse_alt(&mut self) -> Node {
        let mut alternatives = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alternatives.push(self.parse_seq());
        }
        Node::Alt(alternatives)
    }

    fn parse_seq(&mut self) -> Vec<Node> {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            seq.push(self.parse_quantified(atom));
        }
        seq
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('.') => Node::AnyChar,
            Some('\\') => {
                let c = self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.fail("dangling backslash"));
                Node::Literal(unescape(c))
            }
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.fail(&format!("quantifier {c:?} with nothing to repeat"))
            }
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = self.chars.peek() == Some(&'^') && {
            self.chars.next();
            true
        };
        // (char, was_escaped): an escaped `\-` is always a literal dash,
        // never a range separator.
        let mut members: Vec<(char, bool)> = Vec::new();
        loop {
            match self.chars.next() {
                Some(']') if !members.is_empty() => break,
                Some('\\') => {
                    let c = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.fail("dangling backslash"));
                    members.push((unescape(c), true));
                }
                Some(c) => members.push((c, false)),
                None => self.fail("unclosed character class"),
            }
        }
        // Fold `a-z` spans; a `-` at either end is a literal dash.
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < members.len() {
            if i + 2 < members.len() && members[i + 1] == ('-', false) {
                let (lo, hi) = (members[i].0, members[i + 2].0);
                if lo > hi {
                    self.fail(&format!("inverted class range {lo}-{hi}"));
                }
                ranges.push((lo, hi));
                i += 3;
            } else {
                ranges.push((members[i].0, members[i].0));
                i += 1;
            }
        }
        Node::Class { ranges, negated }
    }

    fn parse_quantified(&mut self, atom: Node) -> Node {
        let (min, max) = match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('{') => {
                self.chars.next();
                self.parse_braced_counts()
            }
            _ => return atom,
        };
        Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        }
    }

    fn parse_braced_counts(&mut self) -> (u32, u32) {
        let min = self.parse_number();
        match self.chars.next() {
            Some('}') => (min, min),
            Some(',') => match self.chars.peek() {
                Some('}') => {
                    self.chars.next();
                    (min, min + 8)
                }
                _ => {
                    let max = self.parse_number();
                    if self.chars.next() != Some('}') {
                        self.fail("unclosed {m,n} quantifier");
                    }
                    if max < min {
                        self.fail("quantifier with max < min");
                    }
                    (min, max)
                }
            },
            _ => self.fail("malformed {..} quantifier"),
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut digits = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        digits
            .parse()
            .unwrap_or_else(|_| self.fail("quantifier count is not a number"))
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

/// Palette for `.` and negated classes: mostly printable ASCII with a
/// sprinkling of whitespace, controls and multi-byte characters so totality
/// tests see genuinely hostile input.
fn any_char(rng: &mut StdRng) -> char {
    match rng.gen_range(0..20u32) {
        0 => ' ',
        1 => '\t',
        2 => char::from_u32(rng.gen_range(1..32u32)).unwrap_or('\u{1}'),
        3 => ['é', 'ß', '→', '日', '𝄞', '\u{7f}', '¼', 'Ω'][rng.gen_range(0..8usize)],
        _ => char::from_u32(rng.gen_range(0x20..0x7Fu32)).unwrap(),
    }
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Alt(alternatives) => {
            let seq = &alternatives[rng.gen_range(0..alternatives.len())];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => loop {
            let c = any_char(rng);
            if c != '\n' {
                out.push(c);
                break;
            }
        },
        Node::Class { ranges, negated } => {
            if *negated {
                // Rejection-sample; classes in practice exclude few chars.
                for _ in 0..1000 {
                    let c = any_char(rng);
                    if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                        out.push(c);
                        return;
                    }
                }
                panic!("could not find a character outside negated class");
            }
            // Weight ranges by their width for a uniform choice.
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick).unwrap_or(lo));
                    return;
                }
                pick -= width;
            }
            unreachable!("weighted class pick out of bounds");
        }
        Node::Repeat { node, min, max } => {
            let count = if min == max {
                *min
            } else {
                rng.gen_range(*min..=*max)
            };
            for _ in 0..count {
                emit(node, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = Parser::new(pattern);
    let ast = parser.parse_alt();
    if parser.chars.next().is_some() {
        parser.fail("trailing tokens (unbalanced ')'?)");
    }
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        (0..n)
            .map(|_| generate_matching(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn literal_sequences() {
        assert!(gen_many("abc", 5).iter().all(|s| s == "abc"));
    }

    #[test]
    fn dot_quantifier_bounds_length() {
        for s in gen_many(".{0,200}", 50) {
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn the_sqlish_soup_pattern_parses() {
        let pattern =
            "(select|from|where|insert|update|t|x|'a'|1|2\\.5|\\(|\\)|,|\\*|=|<|>|\\|\\||::| )+";
        for s in gen_many(pattern, 30) {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn the_modelica_class_pattern_stays_in_alphabet() {
        for s in gen_many("[a-z0-9=+\\-*/^(),;.< >]{0,120}", 30) {
            assert!(s.chars().count() <= 120);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "=+-*/^(),;.< >".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn exact_count_and_plus() {
        for s in gen_many("[a-z]{1,12}", 40) {
            assert!((1..=12).contains(&s.chars().count()));
        }
        for s in gen_many("x+", 40) {
            assert!(!s.is_empty() && s.chars().all(|c| c == 'x'));
        }
    }

    #[test]
    fn negated_class_avoids_members() {
        for s in gen_many("[^ab]{5}", 30) {
            assert!(s.chars().all(|c| c != 'a' && c != 'b'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unbalanced_group_is_rejected() {
        gen_many("(ab", 1);
    }
}
