//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API surface its code uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64, the same construction the real
//! `rand` uses for small-state seeding), the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, and [`thread_rng`]. Streams are deterministic for a given
//! seed but are *not* bit-compatible with upstream `rand`; nothing in the
//! workspace depends on upstream's exact streams, only on determinism.

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the upstream
    /// convention for convenient deterministic seeding).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Non-deterministic generator handle returned by [`super::thread_rng`].
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            use std::time::{SystemTime, UNIX_EPOCH};
            let entropy = RandomState::new().build_hasher().finish();
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0);
            ThreadRng {
                inner: StdRng::seed_from_u64(entropy ^ nanos.rotate_left(32)),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A fresh non-deterministic generator (entropy from the hasher seed and
/// the clock; good enough for UUID generation, not for cryptography).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let inc = rng.gen_range(0.8f64..=1.2);
            assert!((0.8..=1.2).contains(&inc));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
