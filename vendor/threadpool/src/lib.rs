//! Offline stand-in for the crates.io worker-pool crates (`threadpool`,
//! `rayon`'s scope, …), reduced to the one shape the fleet subsystem
//! needs: a **persistent** pool of named worker threads plus an
//! index-ordered batch map, [`ThreadPool::run`].
//!
//! Design points, in the order they matter:
//!
//! - **Deterministic reduction.** `run(n, f)` evaluates `f(0..n)` on the
//!   workers but always returns the results as `vec![f(0), …, f(n-1)]` —
//!   slot `i` belongs to task `i` regardless of which worker ran it or
//!   when it finished. Callers that reduce in slot order are therefore
//!   byte-identical to a serial loop.
//! - **Panic containment.** Every task runs under `catch_unwind`. The
//!   first panic cancels the batch's not-yet-started tasks, and `run`
//!   returns the panic rendered as a [`TaskError`] instead of unwinding
//!   a worker. Nothing is poisoned: the pool (and its locks) stay fully
//!   usable for the next batch.
//! - **Thread reuse.** Workers live for the lifetime of the pool, so
//!   per-thread state (thread-local solver scratch, transaction
//!   sessions keyed by thread id) carries over from one task to the
//!   next. That is a feature for buffer reuse and a hazard for session
//!   state — which is why tasks can ask [`worker_index`] who they are,
//!   and why callers embedding a database must reset per-thread session
//!   state at task entry.
//!
//! `run` blocks until the whole batch has retired. Calling it from
//! inside one of the *same* pool's tasks would deadlock a fully-busy
//! pool; nested parallelism must use its own pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work. Only the queue needs `'static`; `run` erases
/// the caller's lifetime and re-establishes it by blocking (see the
/// SAFETY comment there).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work: Condvar,
}

/// A fixed-size pool of persistent worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The calling thread's worker slot (0-based) when it is a pool worker,
/// `None` otherwise. Stable for the life of the pool: slot `k` is always
/// the same OS thread, so per-worker caches key off this index safely.
pub fn worker_index() -> Option<usize> {
    WORKER_INDEX.get()
}

/// Lock that shrugs off poisoning: a worker never unwinds while holding
/// a pool lock (user code runs under `catch_unwind` *outside* them), but
/// if it ever did, the data is a queue/counter that stays consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A task panic, caught on the worker and re-surfaced to the caller of
/// [`ThreadPool::run`] as an error value.
#[derive(Debug, Clone)]
pub struct TaskError {
    /// Index of the task whose closure panicked.
    pub index: usize,
    /// The rendered panic payload.
    pub message: String,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-batch rendezvous: result slots, a retire counter, and the first
/// panic (if any). Shared between the caller and every task of a batch.
struct Batch<R> {
    slots: Mutex<Vec<Option<R>>>,
    /// `(tasks not yet retired, first panic)`.
    state: Mutex<(usize, Option<TaskError>)>,
    done: Condvar,
    cancelled: AtomicBool,
}

impl ThreadPool {
    /// Spawn a pool of `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{slot}"))
                    .spawn(move || {
                        WORKER_INDEX.set(Some(slot));
                        worker_loop(&shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Evaluate `f(i)` for every `i in 0..tasks` on the pool and return
    /// the results **in index order**. Blocks until the batch retires.
    ///
    /// If any task panics, the batch is cancelled (tasks that have not
    /// started are skipped), and the first panic comes back as
    /// `Err(TaskError)` once the in-flight tasks have drained. The pool
    /// itself is unaffected and immediately reusable.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Result<Vec<R>, TaskError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        let batch = Arc::new(Batch::<R> {
            slots: Mutex::new((0..tasks).map(|_| None).collect()),
            state: Mutex::new((tasks, None)),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        let f = &f;
        {
            let mut q = lock(&self.shared.queue);
            for i in 0..tasks {
                let batch = Arc::clone(&batch);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if !batch.cancelled.load(Ordering::Acquire) {
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(r) => lock(&batch.slots)[i] = Some(r),
                            Err(payload) => {
                                batch.cancelled.store(true, Ordering::Release);
                                let mut st = lock(&batch.state);
                                if st.1.is_none() {
                                    st.1 = Some(TaskError {
                                        index: i,
                                        message: panic_message(&*payload),
                                    });
                                }
                            }
                        }
                    }
                    let mut st = lock(&batch.state);
                    st.0 -= 1;
                    if st.0 == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: the queue's `Job` type demands `'static`, but
                // these closures borrow `f` and (through `batch`) the
                // caller's result type `R`. `run` blocks below until the
                // retire counter hits zero, and every enqueued job —
                // executed or cancelled — decrements that counter as the
                // very last thing it does. The borrows therefore strictly
                // outlive every job; the lifetime is erased for the
                // queue, never escaped.
                let job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                q.jobs.push_back(job);
            }
            self.shared.work.notify_all();
        }
        let mut st = lock(&batch.state);
        while st.0 > 0 {
            st = batch.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(err) = st.1.take() {
            return Err(err);
        }
        drop(st);
        let slots = std::mem::take(&mut *lock(&batch.slots));
        Ok(slots
            .into_iter()
            .map(|r| r.expect("retired batch without panic has every slot filled"))
            .collect())
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool
            .run(64, |i| {
                if i % 7 == 0 {
                    // Stagger finish times; slot order must still hold.
                    std::thread::sleep(Duration::from_millis(2));
                }
                i * i
            })
            .unwrap();
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn worker_threads_persist_across_batches() {
        let pool = ThreadPool::new(2);
        let first = pool.run(8, |_| std::thread::current().id()).unwrap();
        let second = pool.run(8, |_| std::thread::current().id()).unwrap();
        let distinct: HashSet<_> = first.iter().chain(second.iter()).collect();
        assert!(
            distinct.len() <= 2,
            "both batches must run on the same two persistent workers"
        );
    }

    #[test]
    fn worker_index_is_set_inside_tasks_and_clear_outside() {
        let pool = ThreadPool::new(3);
        assert_eq!(worker_index(), None);
        let slots = pool.run(16, |_| worker_index().unwrap()).unwrap();
        assert!(slots.iter().all(|&s| s < 3));
    }

    #[test]
    fn a_panicking_task_surfaces_its_message_and_poisons_nothing() {
        let pool = ThreadPool::new(2);
        let err = pool
            .run(8, |i| {
                if i == 3 {
                    panic!("boom {i}");
                }
                i
            })
            .unwrap_err();
        assert_eq!(err.index, 3);
        assert!(err.message.contains("boom 3"), "got: {}", err.message);
        // The pool is immediately reusable — no lock or state poisoning.
        assert_eq!(pool.run(4, |i| i + 1).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn a_panic_cancels_the_unstarted_tail() {
        // A single worker drains in order: task 0 panics, 1..100 must be
        // skipped, and `run` still returns (every slot retires).
        let pool = ThreadPool::new(1);
        let ran = AtomicUsize::new(0);
        let err = pool
            .run(100, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("stop the batch");
                }
            })
            .unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            1,
            "cancelled tail tasks must not execute user code"
        );
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.run(0, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }
}
